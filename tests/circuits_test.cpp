#include <gtest/gtest.h>

#include "graph/circuits.hpp"
#include "graph/graph_builder.hpp"
#include "graph/scc.hpp"
#include "machine/cydra5.hpp"
#include "mii/rec_mii.hpp"
#include "support/error.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;
using graph::DepEdge;
using graph::DepGraph;
using graph::DepKind;

DepEdge
edge(int from, int to, int delay = 1, int distance = 0)
{
    DepEdge e;
    e.from = from;
    e.to = to;
    e.kind = DepKind::kFlow;
    e.delay = delay;
    e.distance = distance;
    return e;
}

TEST(CircuitsTest, AcyclicGraphHasNoCircuits)
{
    DepGraph g(3);
    g.addEdge(edge(0, 1));
    g.addEdge(edge(1, 2));
    EXPECT_TRUE(graph::enumerateElementaryCircuits(g).empty());
}

TEST(CircuitsTest, SelfLoopIsALengthOneCircuit)
{
    DepGraph g(1);
    g.addEdge(edge(0, 0, 3, 1));
    const auto circuits = graph::enumerateElementaryCircuits(g);
    ASSERT_EQ(circuits.size(), 1u);
    EXPECT_EQ(circuits[0].size(), 1u);
    EXPECT_EQ(graph::circuitDelay(g, circuits[0]), 3);
    EXPECT_EQ(graph::circuitDistance(g, circuits[0]), 1);
}

TEST(CircuitsTest, TwoVertexCycleFound)
{
    DepGraph g(2);
    g.addEdge(edge(0, 1, 5, 0));
    g.addEdge(edge(1, 0, 4, 1));
    const auto circuits = graph::enumerateElementaryCircuits(g);
    ASSERT_EQ(circuits.size(), 1u);
    EXPECT_EQ(graph::circuitDelay(g, circuits[0]), 9);
    EXPECT_EQ(graph::circuitDistance(g, circuits[0]), 1);
}

TEST(CircuitsTest, ParallelEdgesYieldDistinctCircuits)
{
    DepGraph g(2);
    g.addEdge(edge(0, 1, 1, 0));
    g.addEdge(edge(1, 0, 1, 1));
    g.addEdge(edge(1, 0, 7, 2)); // parallel back edge
    const auto circuits = graph::enumerateElementaryCircuits(g);
    EXPECT_EQ(circuits.size(), 2u);
}

TEST(CircuitsTest, CompleteGraphCircuitCount)
{
    // K4 (all ordered pairs) has 20 elementary circuits
    // (12 of length 2? no: C(4,2)=6 of length 2, 8 of length 3, 6 of
    // length 4 => 20).
    DepGraph g(4);
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            if (i != j)
                g.addEdge(edge(i, j, 1, 1));
        }
    }
    const auto circuits = graph::enumerateElementaryCircuits(g);
    EXPECT_EQ(circuits.size(), 20u);
}

TEST(CircuitsTest, BudgetExceededThrows)
{
    DepGraph g(4);
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            if (i != j)
                g.addEdge(edge(i, j, 1, 1));
        }
    }
    EXPECT_THROW(graph::enumerateElementaryCircuits(g, 5),
                 support::Error);
}

TEST(CircuitsTest, PseudoVerticesNeverOnCircuits)
{
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("first_order_rec");
    const auto g = graph::buildDepGraph(w.loop, machine);
    for (const auto& circuit : graph::enumerateElementaryCircuits(g)) {
        for (auto eid : circuit) {
            EXPECT_FALSE(g.isPseudo(g.edge(eid).from));
            EXPECT_FALSE(g.isPseudo(g.edge(eid).to));
        }
    }
}

TEST(CircuitsTest, RecMiiFromCircuitsMatchesMinDistOnAllKernels)
{
    // The paper's two RecMII approaches (circuit enumeration as in the
    // Cydra 5 compiler, and the MinDist search) must agree.
    const auto machine = machine::cydra5();
    for (const auto& w : workloads::kernelLibrary()) {
        const auto g = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(g);
        const int by_circuits = mii::computeRecMiiFromCircuits(g);
        const int by_mindist = mii::computeRecMiiPerScc(g, sccs, 1);
        const int whole_graph = mii::computeRecMiiWholeGraph(g, 1);
        EXPECT_EQ(by_circuits, by_mindist) << w.loop.name();
        EXPECT_EQ(by_mindist, whole_graph) << w.loop.name();
    }
}

} // namespace
