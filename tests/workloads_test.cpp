#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "ir/printer.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "workloads/corpus.hpp"
#include "workloads/kernels.hpp"
#include "workloads/profile_model.hpp"
#include "workloads/random_loops.hpp"

namespace {

using namespace ims;

TEST(KernelLibraryTest, AllKernelsValidateAndHaveUniqueNames)
{
    const auto library = workloads::kernelLibrary();
    EXPECT_GE(library.size(), 27u);
    std::set<std::string> names;
    for (const auto& w : library) {
        EXPECT_NO_THROW(w.loop.validate()) << w.loop.name();
        EXPECT_TRUE(names.insert(w.loop.name()).second) << w.loop.name();
        EXPECT_EQ(w.suite, "lfk");
        EXPECT_GE(w.loop.size(), 4); // Table 3 minimum
    }
}

TEST(KernelLibraryTest, LookupByName)
{
    const auto w = workloads::kernelByName("daxpy");
    EXPECT_EQ(w.loop.name(), "daxpy");
    EXPECT_THROW(workloads::kernelByName("nope"), support::Error);
}

TEST(KernelLibraryTest, MakeSimSpecCoversAllArraysAndLiveIns)
{
    const auto w = workloads::kernelByName("hydro_frag");
    const auto spec = workloads::makeSimSpec(w.loop, 20, 9);
    EXPECT_EQ(spec.tripCount, 20);
    for (const auto& array : w.loop.arrays())
        EXPECT_TRUE(spec.arrays.count(array.name)) << array.name;
    for (const auto& reg : w.loop.registers()) {
        if (reg.isLiveIn)
            EXPECT_TRUE(spec.liveIn.count(reg.name)) << reg.name;
    }
    // Margin must cover the z[i+11] access.
    EXPECT_GE(spec.margin, 11);
}

TEST(KernelLibraryTest, MakeSimSpecDeterministic)
{
    const auto w = workloads::kernelByName("daxpy");
    const auto a = workloads::makeSimSpec(w.loop, 10, 4);
    const auto b = workloads::makeSimSpec(w.loop, 10, 4);
    EXPECT_EQ(a.arrays.at("X"), b.arrays.at("X"));
    EXPECT_EQ(a.liveIn, b.liveIn);
}

TEST(RandomLoopsTest, GeneratedLoopsValidate)
{
    support::Rng rng(123);
    for (int k = 0; k < 200; ++k) {
        const auto loop = workloads::generateLoop(
            rng, "g" + std::to_string(k));
        EXPECT_NO_THROW(loop.validate()) << loop.name();
        EXPECT_GE(loop.size(), 4);
        EXPECT_LE(loop.size(), 170);
    }
}

TEST(RandomLoopsTest, DeterministicInSeed)
{
    support::Rng a(77);
    support::Rng b(77);
    for (int k = 0; k < 20; ++k) {
        const auto la = workloads::generateLoop(a, "x");
        const auto lb = workloads::generateLoop(b, "x");
        EXPECT_EQ(la.toString(), lb.toString());
    }
}

TEST(RandomLoopsTest, SizeDistributionRoughlyMatchesTable3)
{
    // Table 3: number of operations has median ~12, mean ~19.5, max 163.
    support::Rng rng(2026);
    std::vector<double> sizes;
    for (int k = 0; k < 1300; ++k)
        sizes.push_back(workloads::generateLoop(rng, "s").size());
    const double med = support::median(sizes);
    const double mean = support::mean(sizes);
    EXPECT_GE(med, 7.0);
    EXPECT_LE(med, 17.0);
    EXPECT_GE(mean, 13.0);
    EXPECT_LE(mean, 27.0);
}

TEST(CorpusTest, MatchesPaperComposition)
{
    workloads::CorpusSpec spec;
    spec.perfectLoops = 50; // smaller for test speed
    spec.specLoops = 20;
    spec.lfkLoops = 10;
    const auto corpus = workloads::buildCorpus(spec);
    EXPECT_EQ(corpus.size(), 80u);
    int perfect = 0, spec_count = 0, lfk = 0;
    for (const auto& w : corpus) {
        perfect += w.suite == "perfect";
        spec_count += w.suite == "spec";
        lfk += w.suite == "lfk";
        EXPECT_NO_THROW(w.loop.validate());
    }
    EXPECT_EQ(perfect, 50);
    EXPECT_EQ(spec_count, 20);
    EXPECT_EQ(lfk, 10);
}

TEST(CorpusTest, DefaultSpecIs1327Loops)
{
    const workloads::CorpusSpec spec;
    EXPECT_EQ(spec.perfectLoops + spec.specLoops + spec.lfkLoops, 1327);
}

TEST(CorpusTest, DeterministicAcrossBuilds)
{
    workloads::CorpusSpec spec;
    spec.perfectLoops = 15;
    spec.specLoops = 5;
    spec.lfkLoops = 3;
    const auto a = workloads::buildCorpus(spec);
    const auto b = workloads::buildCorpus(spec);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k)
        EXPECT_EQ(a[k].loop.toString(), b[k].loop.toString());
}

TEST(ProfileModelTest, DeterministicAndRoughly45PercentExecuted)
{
    int executed = 0;
    for (int k = 0; k < 1327; ++k) {
        const auto p1 = workloads::syntheticProfile(k);
        const auto p2 = workloads::syntheticProfile(k);
        EXPECT_EQ(p1.executed, p2.executed);
        EXPECT_EQ(p1.loopFreq, p2.loopFreq);
        executed += p1.executed;
        if (p1.executed) {
            EXPECT_GE(p1.entryFreq, 1u);
            EXPECT_GE(p1.loopFreq, p1.entryFreq);
        }
    }
    EXPECT_GT(executed, 1327 * 0.35);
    EXPECT_LT(executed, 1327 * 0.55);
}

/**
 * FNV-1a 64-bit hash of the canonical printed form of `count` generated
 * loops. Any change to the generator's draw sequence, the profile
 * defaults, or the printer shows up here.
 */
std::uint64_t
generatorHash(std::uint64_t seed, const workloads::GeneratorProfile& profile,
              int count)
{
    support::Rng rng(seed);
    std::uint64_t hash = 1469598103934665603ULL;
    for (int i = 0; i < count; ++i) {
        const std::string text = ir::printLoop(
            workloads::generateLoop(rng, "g" + std::to_string(i), profile));
        for (const char c : text) {
            hash ^= static_cast<unsigned char>(c);
            hash *= 1099511628211ULL;
        }
    }
    return hash;
}

// Golden hashes pin generateLoop's output for fixed seeds. Fuzz
// campaigns, minimized reproducers, and CI smoke runs all replay by
// regenerating cases from their recorded seeds, so the generator must
// stay bit-stable across platforms and refactors. If this test fails
// because of a DELIBERATE generator change, update the constants and
// expect recorded fuzz case seeds to map to different cases.
TEST(RandomLoopsTest, GeneratorIsSeedStable)
{
    const workloads::GeneratorProfile corpus;
    const workloads::GeneratorProfile fuzz = workloads::fuzzProfile();
    EXPECT_EQ(generatorHash(1, corpus, 20), 0xcbe95bbf363d48d1ULL);
    EXPECT_EQ(generatorHash(2, corpus, 20), 0x382fe3319c15ea8eULL);
    EXPECT_EQ(generatorHash(1994, corpus, 20), 0x404ecae308e7bb0aULL);
    EXPECT_EQ(generatorHash(1, fuzz, 20), 0x69878d93d060cc10ULL);
    EXPECT_EQ(generatorHash(404, fuzz, 20), 0xdfb81c434680b470ULL);
}

TEST(ProfileModelTest, ExecutionTimeFormula)
{
    workloads::LoopProfile profile;
    profile.executed = true;
    profile.entryFreq = 10;
    profile.loopFreq = 1000;
    // EntryFreq*SL + (LoopFreq-EntryFreq)*II.
    EXPECT_DOUBLE_EQ(workloads::executionTime(profile, 30, 4),
                     10.0 * 30 + 990.0 * 4);
    profile.executed = false;
    EXPECT_DOUBLE_EQ(workloads::executionTime(profile, 30, 4), 0.0);
}

} // namespace
