#include <gtest/gtest.h>

#include "graph/graph_builder.hpp"
#include "graph/scc.hpp"
#include "machine/cydra5.hpp"
#include "machine/machines.hpp"
#include "mii/mii.hpp"
#include "mii/min_dist.hpp"
#include "mii/rec_mii.hpp"
#include "mii/res_mii.hpp"
#include "support/error.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;
using graph::DepEdge;
using graph::DepGraph;
using graph::DepKind;

DepEdge
edge(int from, int to, int delay, int distance)
{
    DepEdge e;
    e.from = from;
    e.to = to;
    e.kind = DepKind::kFlow;
    e.delay = delay;
    e.distance = distance;
    return e;
}

struct KernelMii
{
    const char* name;
    int resMii;
    int mii;
};

class ResMiiTest : public ::testing::Test
{
  protected:
    machine::MachineModel machine_ = machine::cydra5();
};

TEST_F(ResMiiTest, DaxpyIsMemoryPortBound)
{
    // daxpy: 2 loads + 1 store over 2 memory ports -> ResMII 2.
    const auto w = workloads::kernelByName("daxpy");
    const auto result = mii::computeResMii(w.loop, machine_);
    EXPECT_EQ(result.resMii, 2);
    const std::string critical =
        machine_.resourceName(result.criticalResource);
    EXPECT_TRUE(critical == "mem-port-0" || critical == "mem-port-1")
        << critical;
}

TEST_F(ResMiiTest, DivKernelBoundByBlockedMultiplierStage)
{
    const auto w = workloads::kernelByName("div_kernel");
    const auto result = mii::computeResMii(w.loop, machine_);
    EXPECT_EQ(result.resMii, 18);
    EXPECT_EQ(machine_.resourceName(result.criticalResource),
              "mult-stage-1");
}

TEST_F(ResMiiTest, InitStoreNeedsOnlyOneCycle)
{
    const auto w = workloads::kernelByName("init_store");
    EXPECT_EQ(mii::computeResMii(w.loop, machine_).resMii, 1);
}

TEST_F(ResMiiTest, GreedySpreadsAcrossAlternatives)
{
    // multi_array: 4 loads + 4 stores over 2 ports -> 4 per port.
    const auto w = workloads::kernelByName("multi_array");
    const auto result = mii::computeResMii(w.loop, machine_);
    EXPECT_EQ(result.resMii, 4);
    // Usage must be balanced across the two ports.
    int port0 = 0, port1 = 0;
    for (int r = 0; r < machine_.numResources(); ++r) {
        if (machine_.resourceName(r) == "mem-port-0")
            port0 = result.usage[r];
        if (machine_.resourceName(r) == "mem-port-1")
            port1 = result.usage[r];
    }
    EXPECT_EQ(port0, 4);
    EXPECT_EQ(port1, 4);
}

TEST_F(ResMiiTest, SortsByAlternativeCount)
{
    // Chosen alternatives are recorded for every op.
    const auto w = workloads::kernelByName("daxpy");
    const auto result = mii::computeResMii(w.loop, machine_);
    EXPECT_EQ(static_cast<int>(result.chosenAlternative.size()),
              w.loop.size());
    for (int op = 0; op < w.loop.size(); ++op) {
        const int alts =
            machine_.numAlternatives(w.loop.operation(op).opcode);
        EXPECT_GE(result.chosenAlternative[op], 0);
        EXPECT_LT(result.chosenAlternative[op], alts);
    }
}

TEST(MinDistTest, InitializationUsesDelayMinusIiTimesDistance)
{
    DepGraph g(2);
    g.addEdge(edge(0, 1, 7, 2));
    const mii::MinDistMatrix m(g, std::vector<graph::VertexId>{0, 1}, 3);
    EXPECT_EQ(m.atVertex(0, 1), 7 - 3 * 2);
    EXPECT_EQ(m.atVertex(1, 0), mii::MinDistMatrix::kMinusInf);
}

TEST(MinDistTest, ClosureComposesPaths)
{
    DepGraph g(3);
    g.addEdge(edge(0, 1, 4, 0));
    g.addEdge(edge(1, 2, 5, 0));
    const mii::MinDistMatrix m(g, {0, 1, 2}, 1);
    EXPECT_EQ(m.atVertex(0, 2), 9);
}

TEST(MinDistTest, ParallelEdgesTakeMax)
{
    DepGraph g(2);
    g.addEdge(edge(0, 1, 2, 0));
    g.addEdge(edge(0, 1, 9, 1));
    const mii::MinDistMatrix m(g, {0, 1}, 4);
    EXPECT_EQ(m.atVertex(0, 1), 5); // max(2, 9-4)
}

TEST(MinDistTest, DiagonalDetectsInfeasibleIi)
{
    // Circuit delay 9, distance 1: feasible iff II >= 9.
    DepGraph g(2);
    g.addEdge(edge(0, 1, 5, 0));
    g.addEdge(edge(1, 0, 4, 1));
    for (int ii = 1; ii <= 12; ++ii) {
        const mii::MinDistMatrix m(g, {0, 1}, ii);
        EXPECT_EQ(m.feasible(), ii >= 9) << "II " << ii;
        if (ii == 9)
            EXPECT_EQ(m.maxDiagonal(), 0); // tight at the RecMII
    }
}

TEST(MinDistTest, CountersCountInvocationsAndInnerSteps)
{
    // A two-edge path 0 -> 1 -> 2 has exactly one productive closure step
    // (combining the finite halves via k = 1). The counter counts only
    // productive (i, k, j) combinations — iterations skipped because a
    // path half is -infinity are no-ops and are not billed (Table 4
    // counts work, not loop trips; see docs/api.md).
    DepGraph g(3);
    g.addEdge(edge(0, 1, 1, 0));
    g.addEdge(edge(1, 2, 1, 0));
    support::Counters counters;
    const mii::MinDistMatrix m(g, {0, 1, 2}, 1, &counters);
    EXPECT_EQ(counters.minDistInvocations, 1u);
    EXPECT_EQ(counters.minDistInnerSteps, 1u);
    EXPECT_EQ(m.atVertex(0, 2), 2);
}

TEST(MinDistTest, RecomputeMatchesFreshConstruction)
{
    // Reusing one matrix across candidate IIs must agree entry-for-entry
    // with building a fresh matrix per II (the RecMII search relies on
    // this).
    DepGraph g(3);
    g.addEdge(edge(0, 1, 3, 0));
    g.addEdge(edge(1, 2, 4, 0));
    g.addEdge(edge(2, 0, 5, 2));
    mii::MinDistMatrix reused(g, {0, 1, 2}, 1);
    for (int ii = 1; ii <= 8; ++ii) {
        reused.recompute(ii);
        const mii::MinDistMatrix fresh(g, {0, 1, 2}, ii);
        ASSERT_EQ(reused.ii(), fresh.ii());
        for (int i = 0; i < 3; ++i) {
            for (int j = 0; j < 3; ++j)
                EXPECT_EQ(reused.at(i, j), fresh.at(i, j))
                    << "ii " << ii << " at (" << i << "," << j << ")";
        }
        EXPECT_EQ(reused.feasible(), fresh.feasible()) << "ii " << ii;
    }
}

TEST(RecMiiTest, SelfLoopBound)
{
    DepGraph g(1);
    g.addEdge(edge(0, 0, 3, 1));
    const auto sccs = graph::findSccs(g);
    EXPECT_EQ(mii::computeRecMiiPerScc(g, sccs, 1), 3);
    // Back-substituted: distance 3 -> ceil(3/3) = 1.
    DepGraph g2(1);
    g2.addEdge(edge(0, 0, 3, 3));
    const auto sccs2 = graph::findSccs(g2);
    EXPECT_EQ(mii::computeRecMiiPerScc(g2, sccs2, 1), 1);
}

TEST(RecMiiTest, StartCandidateIsAFloor)
{
    DepGraph g(1);
    g.addEdge(edge(0, 0, 3, 1));
    const auto sccs = graph::findSccs(g);
    // Production protocol never looks below the ResMII floor.
    EXPECT_EQ(mii::computeRecMiiPerScc(g, sccs, 7), 7);
}

TEST(RecMiiTest, ZeroDistanceCycleRejected)
{
    DepGraph g(2);
    g.addEdge(edge(0, 1, 1, 0));
    g.addEdge(edge(1, 0, 1, 0));
    const auto sccs = graph::findSccs(g);
    EXPECT_THROW(mii::computeRecMiiPerScc(g, sccs, 1), support::Error);
    EXPECT_THROW(mii::computeRecMiiFromCircuits(g), support::Error);
}

TEST(RecMiiTest, FractionalBoundRoundsUp)
{
    // Delay 7 over distance 2: RecMII = ceil(7/2) = 4.
    DepGraph g(2);
    g.addEdge(edge(0, 1, 3, 0));
    g.addEdge(edge(1, 0, 4, 2));
    const auto sccs = graph::findSccs(g);
    EXPECT_EQ(mii::computeRecMiiPerScc(g, sccs, 1), 4);
    EXPECT_EQ(mii::computeRecMiiFromCircuits(g), 4);
}

TEST(MiiTest, KnownKernelValues)
{
    const auto machine = machine::cydra5();
    const KernelMii expected[] = {
        {"init_store", 1, 1},    {"vec_copy", 1, 1},
        {"daxpy", 2, 2},         {"dot_raw", 2, 4},
        {"first_order_rec", 2, 9}, {"tridiag", 2, 9},
        {"div_kernel", 18, 18},  {"mem_recurrence", 2, 30},
        {"raw_counter", 1, 3},
    };
    for (const auto& k : expected) {
        const auto w = workloads::kernelByName(k.name);
        const auto g = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(g);
        const auto result = mii::computeMii(w.loop, machine, g, sccs);
        EXPECT_EQ(result.resMii, k.resMii) << k.name;
        EXPECT_EQ(result.mii, k.mii) << k.name;
    }
}

TEST(MiiTest, TrueRecMiiNeverExceedsProductionMii)
{
    const auto machine = machine::cydra5();
    for (const auto& w : workloads::kernelLibrary()) {
        const auto g = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(g);
        const auto result = mii::computeMii(w.loop, machine, g, sccs);
        const int true_rec = mii::computeTrueRecMii(g, sccs);
        EXPECT_EQ(result.mii, std::max(result.resMii, true_rec))
            << w.loop.name();
    }
}

TEST(MiiTest, MiiIsOneForEmptyRecurrenceGraphs)
{
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("init_store");
    const auto g = graph::buildDepGraph(w.loop, machine);
    const auto sccs = graph::findSccs(g);
    EXPECT_EQ(mii::computeTrueRecMii(g, sccs), 1);
}

} // namespace
