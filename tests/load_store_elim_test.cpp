#include <gtest/gtest.h>

#include "core/pipeliner.hpp"
#include "graph/graph_builder.hpp"
#include "graph/scc.hpp"
#include "ir/loop_builder.hpp"
#include "machine/cydra5.hpp"
#include "mii/mii.hpp"
#include "sim/pipeline_simulator.hpp"
#include "sim/sequential_interpreter.hpp"
#include "transform/load_store_elim.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;
using ir::Opcode;

TEST(LoadStoreElimTest, ForwardsTheMemoryRecurrence)
{
    // mem_recurrence: a[i] = a[i-1]*r + b[i]; the load of a[i-1] is fed
    // by the (only) store to A one iteration earlier.
    const auto w = workloads::kernelByName("mem_recurrence");
    const auto result = transform::eliminateRedundantLoads(w.loop);
    EXPECT_EQ(result.eliminatedLoads, 1);
    EXPECT_EQ(result.loop.size(), w.loop.size() - 1);
    ASSERT_EQ(result.seedRules.size(), 1u);
    EXPECT_EQ(result.seedRules[0].array, "A");
    EXPECT_EQ(result.seedRules[0].offset, 0); // the store's offset
}

TEST(LoadStoreElimTest, CriticalPathRecurrenceShrinks)
{
    // The paper's motivation: "this can improve the schedule if a load
    // is on a critical path". The 20-cycle load leaves the recurrence:
    // MII falls from 30 (store+load+mul+add) to 9 (mul+add).
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("mem_recurrence");
    const auto result = transform::eliminateRedundantLoads(w.loop);

    auto mii_of = [&](const ir::Loop& loop) {
        const auto g = graph::buildDepGraph(loop, machine);
        const auto sccs = graph::findSccs(g);
        return mii::computeMii(loop, machine, g, sccs).mii;
    };
    EXPECT_EQ(mii_of(w.loop), 30);
    EXPECT_EQ(mii_of(result.loop), 9);
}

TEST(LoadStoreElimTest, SemanticsPreservedSequentially)
{
    const auto w = workloads::kernelByName("mem_recurrence");
    const auto result = transform::eliminateRedundantLoads(w.loop);

    sim::SimSpec spec;
    spec.tripCount = 6;
    spec.margin = 8;
    spec.liveIn["r"] = 2.0;
    spec.arrays["A"] = {-1, {5.0}};
    spec.arrays["B"] = {0, {1, 1, 1, 1, 1, 1}};
    const auto forwarded_spec = transform::forwardedSimSpec(result, spec);

    const auto original = sim::runSequential(w.loop, spec);
    const auto forwarded =
        sim::runSequential(result.loop, forwarded_spec);
    // Compare the A array contents (the forwarded loop lacks the load's
    // register, so compare memory cell by cell).
    for (ir::ArrayId arr = 0; arr < w.loop.numArrays(); ++arr) {
        if (w.loop.arrays()[arr].name != "A")
            continue;
        for (int i = 0; i < 6; ++i) {
            EXPECT_DOUBLE_EQ(original.memory.read(arr, i),
                             forwarded.memory.read(arr, i))
                << i;
        }
    }
}

TEST(LoadStoreElimTest, PipelinedForwardedLoopStaysEquivalent)
{
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    const auto w = workloads::kernelByName("mem_recurrence");
    const auto result = transform::eliminateRedundantLoads(w.loop);
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(result.loop)).artifactsOrThrow();

    const auto spec = workloads::makeSimSpec(w.loop, 20, 13);
    const auto forwarded_spec = transform::forwardedSimSpec(result, spec);
    const auto seq = sim::runSequential(result.loop, forwarded_spec);
    const auto pipe = sim::runPipelined(
        result.loop, artifacts.outcome.schedule, forwarded_spec);
    EXPECT_TRUE(sim::equivalent(seq, pipe.state));
}

TEST(LoadStoreElimTest, MultiStoreArraysAreLeftAlone)
{
    // Two stores to the array: forwarding is conservatively skipped.
    ir::LoopBuilder b("two_stores");
    b.recurrence("ax");
    b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 3), b.imm(24)});
    b.load("x", "A", -1, b.reg("ax"));
    b.store("A", 0, b.reg("ax"), b.reg("x"));
    b.store("A", 1, b.reg("ax"), b.reg("x"));
    b.closeLoopBackSubstituted();
    const auto loop = b.build();
    const auto result = transform::eliminateRedundantLoads(loop);
    EXPECT_EQ(result.eliminatedLoads, 0);
    EXPECT_EQ(result.loop.size(), loop.size());
}

TEST(LoadStoreElimTest, GuardedAccessesAreLeftAlone)
{
    ir::LoopBuilder b("guarded");
    b.recurrence("ax");
    b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 3), b.imm(24)});
    b.load("x", "B", 0, b.reg("ax"));
    b.op(Opcode::kPredSet, "p", {b.reg("x"), b.imm(0)});
    b.load("prev", "A", -1, b.reg("ax"));
    b.storeIf("A", 0, b.reg("ax"), b.reg("prev"), b.reg("p"));
    b.closeLoopBackSubstituted();
    const auto loop = b.build();
    const auto result = transform::eliminateRedundantLoads(loop);
    EXPECT_EQ(result.eliminatedLoads, 0);
}

TEST(LoadStoreElimTest, SameIterationForwardingWorks)
{
    // store A[i] then load A[i] in the same iteration: distance 0.
    ir::LoopBuilder b("same_iter");
    b.recurrence("ax");
    b.liveIn("c");
    b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 3), b.imm(24)});
    b.op(Opcode::kMul, "v", {b.reg("c"), b.reg("c")});
    b.store("A", 0, b.reg("ax"), b.reg("v"));
    b.load("back", "A", 0, b.reg("ax"));
    b.op(Opcode::kAdd, "y", {b.reg("back"), b.reg("c")});
    b.store("Y", 0, b.reg("ax"), b.reg("y"));
    b.closeLoopBackSubstituted();
    const auto loop = b.build();
    const auto result = transform::eliminateRedundantLoads(loop);
    // Only the A load qualifies (Y has one store but no load of it).
    EXPECT_EQ(result.eliminatedLoads, 1);
    EXPECT_TRUE(result.seedRules.empty()); // distance 0 needs no seeds

    const auto spec = workloads::makeSimSpec(loop, 8, 3);
    const auto a = sim::runSequential(loop, spec);
    const auto b2 = sim::runSequential(
        result.loop, transform::forwardedSimSpec(result, spec));
    for (ir::ArrayId arr = 0; arr < loop.numArrays(); ++arr) {
        if (loop.arrays()[arr].name != "Y")
            continue;
        for (int i = 0; i < 8; ++i) {
            EXPECT_TRUE(sim::sameValue(a.memory.read(arr, i),
                                       b2.memory.read(arr, i)))
                << i;
        }
    }
}

} // namespace
