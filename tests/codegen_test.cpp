#include <gtest/gtest.h>

#include "codegen/code_generator.hpp"
#include "codegen/emit.hpp"
#include "codegen/lifetimes.hpp"
#include "codegen/mve.hpp"
#include "codegen/register_allocator.hpp"
#include "core/pipeliner.hpp"
#include "machine/cydra5.hpp"
#include "sim/section_executor.hpp"
#include "support/error.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;

core::PipelineArtifacts
pipelineKernel(const std::string& name)
{
    static const machine::MachineModel machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    const auto loop = workloads::kernelByName(name).loop;
    return pipeliner.pipeline(core::PipelineRequest(loop))
        .artifactsOrThrow();
}

TEST(KernelTest, StageAndSlotDecomposeScheduleTime)
{
    const auto artifacts = pipelineKernel("daxpy");
    const auto& schedule = artifacts.outcome.schedule;
    const auto& kernel = artifacts.code.kernel;
    for (const auto& placement : kernel.placements) {
        EXPECT_EQ(placement.stage * schedule.ii + placement.slot,
                  schedule.times[placement.op]);
        EXPECT_GE(placement.slot, 0);
        EXPECT_LT(placement.slot, schedule.ii);
        EXPECT_LT(placement.stage, kernel.stageCount);
    }
}

TEST(KernelTest, RowsPartitionTheOps)
{
    const auto artifacts = pipelineKernel("hydro_frag");
    const auto& kernel = artifacts.code.kernel;
    int total = 0;
    for (int slot = 0; slot < kernel.ii; ++slot)
        total += static_cast<int>(kernel.rowOf(slot).size());
    EXPECT_EQ(total, static_cast<int>(kernel.placements.size()));
}

TEST(LifetimeTest, DefToLastUseSpansIiTimesDistance)
{
    // dot_bs4: s = add s[4], t. The accumulator's value is used 4
    // iterations later, so its lifetime is at least 4 * II.
    const auto artifacts = pipelineKernel("dot_bs4");
    const auto& schedule = artifacts.outcome.schedule;
    bool found = false;
    for (const auto& lifetime : artifacts.lifetimes.lifetimes) {
        if (lifetime.length() >= 4 * schedule.ii) {
            found = true;
        }
        EXPECT_GE(lifetime.length(), 1);
    }
    EXPECT_TRUE(found);
}

TEST(LifetimeTest, UnusedResultStillLivesForItsLatency)
{
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("init_store");
    core::SoftwarePipeliner pipeliner(machine);
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
    for (const auto& lifetime : artifacts.lifetimes.lifetimes) {
        const auto opcode = w.loop.operation(lifetime.def).opcode;
        EXPECT_GE(lifetime.length(), machine.latency(opcode));
    }
}

TEST(MveTest, UnrollCoversLongestLifetime)
{
    for (const char* name : {"daxpy", "dot_bs4", "vec_copy", "tridiag"}) {
        const auto artifacts = pipelineKernel(name);
        const int ii = artifacts.outcome.schedule.ii;
        int expected = 1;
        for (const auto& lifetime : artifacts.lifetimes.lifetimes)
            expected = std::max(expected,
                                (lifetime.length() + ii - 1) / ii);
        EXPECT_EQ(artifacts.code.mve.unroll, expected) << name;
        EXPECT_EQ(artifacts.lifetimes.kmin, expected) << name;
    }
}

TEST(CodeGenTest, InstanceConservationAcrossTripCounts)
{
    // prologue + (T - SC + 1) kernels + epilogue must contain exactly
    // T * numOps instances.
    for (const char* name :
         {"daxpy", "init_store", "mem_recurrence", "fat_loop"}) {
        const auto artifacts = pipelineKernel(name);
        const auto& code = artifacts.code;
        const int n = static_cast<int>(
            artifacts.outcome.schedule.times.size());
        for (int trip :
             {code.kernel.stageCount, code.kernel.stageCount + 1, 50,
              173}) {
            if (trip < code.kernel.stageCount)
                continue;
            EXPECT_EQ(code.totalInstances(trip),
                      static_cast<long long>(trip) * n)
                << name << " trip " << trip;
        }
    }
}

TEST(CodeGenTest, SectionCycleCounts)
{
    const auto artifacts = pipelineKernel("daxpy");
    const auto& code = artifacts.code;
    const int ii = artifacts.outcome.schedule.ii;
    const int ramp = (code.kernel.stageCount - 1) * ii;
    EXPECT_EQ(code.prologue.numCycles(), ramp);
    EXPECT_EQ(code.kernelSection.numCycles(), ii);
    EXPECT_EQ(code.epilogue.numCycles(), ramp);
}

TEST(CodeGenTest, KernelSectionHoldsEveryOpOnce)
{
    const auto artifacts = pipelineKernel("state_frag");
    EXPECT_EQ(artifacts.code.kernelSection.numInstances(),
              static_cast<int>(artifacts.outcome.schedule.times.size()));
}

TEST(CodeGenTest, CodeExpansionIsBoundedByStagesPlusUnroll)
{
    const auto artifacts = pipelineKernel("vec_copy");
    const double ratio = artifacts.code.codeExpansionRatio(
        artifacts.outcome.schedule.scheduleLength);
    EXPECT_GT(ratio, 0.0);
    // prologue + epilogue + unrolled kernel <= 2 SL + unroll * II worth.
    EXPECT_LT(ratio, 4.0);
}

TEST(RegisterAllocTest, RotatingBlocksDoNotOverlap)
{
    const auto artifacts = pipelineKernel("dot_bs4");
    std::vector<std::pair<int, int>> blocks; // (base, copies)
    for (const auto& a : artifacts.registers.assignments) {
        if (a.rotating)
            blocks.emplace_back(a.base, a.copies);
    }
    std::sort(blocks.begin(), blocks.end());
    for (std::size_t i = 1; i < blocks.size(); ++i) {
        EXPECT_GE(blocks[i].first,
                  blocks[i - 1].first + blocks[i - 1].second);
    }
}

TEST(RegisterAllocTest, TotalsMatchAssignments)
{
    const auto artifacts = pipelineKernel("daxpy");
    int rotating = 0, statics = 0;
    for (const auto& a : artifacts.registers.assignments) {
        if (a.rotating)
            rotating += a.copies;
        else
            statics += 1;
    }
    EXPECT_EQ(artifacts.registers.rotatingRegisters, rotating);
    EXPECT_EQ(artifacts.registers.staticRegisters, statics);
}

TEST(RegisterAllocTest, PhysicalNamesCycleModuloCopies)
{
    const auto artifacts = pipelineKernel("dot_bs4");
    for (const auto& a : artifacts.registers.assignments) {
        if (!a.rotating || a.copies < 2)
            continue;
        const auto& alloc = artifacts.registers;
        EXPECT_EQ(alloc.physicalName(a.reg, 0),
                  alloc.physicalName(a.reg, a.copies));
        EXPECT_NE(alloc.physicalName(a.reg, 0),
                  alloc.physicalName(a.reg, 1));
    }
}

TEST(EmitTest, ListingMentionsAllSections)
{
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("daxpy");
    core::SoftwarePipeliner pipeliner(machine);
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
    const std::string listing = codegen::emitListing(
        w.loop, artifacts.code, artifacts.registers);
    EXPECT_NE(listing.find("prologue"), std::string::npos);
    EXPECT_NE(listing.find("kernel"), std::string::npos);
    EXPECT_NE(listing.find("epilogue"), std::string::npos);
    EXPECT_NE(listing.find("rr"), std::string::npos); // rotating regs
}

TEST(EmitTest, KernelDumpShowsStages)
{
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("daxpy");
    core::SoftwarePipeliner pipeliner(machine);
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
    const std::string text = codegen::emitKernel(w.loop, artifacts.code);
    EXPECT_NE(text.find("stage"), std::string::npos);
    EXPECT_NE(text.find("row 0"), std::string::npos);
}

TEST(SectionExecutorTest, GeneratedCodeMatchesSequentialSemantics)
{
    // Executing the prologue / kernel-repetitions / epilogue structure
    // (not the flat schedule) must still reproduce the reference
    // semantics exactly — this validates the emitted code's instance
    // bookkeeping end-to-end.
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    for (const char* name :
         {"daxpy", "init_store", "dot_bs4", "first_order_rec",
          "mem_recurrence", "cond_store", "argmax_like", "iccg_like",
          "fat_loop"}) {
        const auto w = workloads::kernelByName(name);
        const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
        const int trip =
            std::max(40, artifacts.code.kernel.stageCount + 3);
        const auto spec = workloads::makeSimSpec(w.loop, trip, 21);
        const auto seq = sim::runSequential(w.loop, spec);
        const auto sections =
            sim::runGeneratedCode(w.loop, artifacts.code, spec);
        EXPECT_TRUE(sim::equivalent(seq, sections)) << name;
    }
}

TEST(SectionExecutorTest, ShortTripCountsRejected)
{
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    const auto w = workloads::kernelByName("vec_copy"); // many stages
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
    ASSERT_GT(artifacts.code.kernel.stageCount, 2);
    const auto spec = workloads::makeSimSpec(
        w.loop, artifacts.code.kernel.stageCount - 1, 3);
    EXPECT_THROW(sim::runGeneratedCode(w.loop, artifacts.code, spec),
                 support::Error);
}

TEST(KernelOnlyTest, MatchesSequentialSemantics)
{
    // The [36] kernel-only schema (stage predicates, no prologue or
    // epilogue) must execute to the same final state, including for trip
    // counts below the stage count, which it handles naturally.
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    for (const char* name :
         {"daxpy", "vec_copy", "first_order_rec", "cond_store",
          "mem_recurrence"}) {
        const auto w = workloads::kernelByName(name);
        const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
        const auto kernel_only = codegen::generateKernelOnly(
            w.loop, artifacts.outcome.schedule);
        for (const int trip : {2, artifacts.code.kernel.stageCount, 40}) {
            const auto spec = workloads::makeSimSpec(w.loop, trip, 31);
            const auto seq = sim::runSequential(w.loop, spec);
            const auto ko =
                sim::runKernelOnly(w.loop, kernel_only, spec);
            EXPECT_TRUE(sim::equivalent(seq, ko))
                << name << " trip " << trip;
        }
    }
}

TEST(KernelOnlyTest, CodeSizeIsExactlyTheIi)
{
    const auto artifacts = pipelineKernel("daxpy");
    const auto w = workloads::kernelByName("daxpy");
    const auto kernel_only =
        codegen::generateKernelOnly(w.loop, artifacts.outcome.schedule);
    EXPECT_EQ(kernel_only.codeCycles(), artifacts.outcome.schedule.ii);
    EXPECT_EQ(kernel_only.repetitions(100),
              100 + kernel_only.stageCount - 1);
    int placements = 0;
    for (const auto& cycle : kernel_only.cycles)
        placements += static_cast<int>(cycle.size());
    EXPECT_EQ(placements, w.loop.size());
}

TEST(KernelOnlyTest, EmissionShowsStagePredicates)
{
    const auto artifacts = pipelineKernel("daxpy");
    const auto w = workloads::kernelByName("daxpy");
    const auto kernel_only =
        codegen::generateKernelOnly(w.loop, artifacts.outcome.schedule);
    const std::string text =
        codegen::emitKernelOnly(w.loop, kernel_only);
    EXPECT_NE(text.find("if sp["), std::string::npos);
    EXPECT_NE(text.find("brtop"), std::string::npos);
}

TEST(EmitTest, MveUnrolledKernelEmitsEachCopy)
{
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("vec_copy"); // big unroll
    core::SoftwarePipeliner pipeliner(machine);
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
    ASSERT_GT(artifacts.code.mve.unroll, 1);
    const std::string listing = codegen::emitListing(
        w.loop, artifacts.code, artifacts.registers);
    EXPECT_NE(listing.find("kernel (copy 0)"), std::string::npos);
    EXPECT_NE(listing.find("kernel (copy 1)"), std::string::npos);
}

} // namespace
