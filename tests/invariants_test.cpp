#include <gtest/gtest.h>

#include "graph/graph_builder.hpp"
#include "graph/scc.hpp"
#include "machine/cydra5.hpp"
#include "mii/mii.hpp"
#include "mii/min_dist.hpp"
#include "mii/rec_mii.hpp"
#include "sched/mrt.hpp"
#include "support/rng.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_loops.hpp"

namespace {

using namespace ims;

/**
 * MinDist closure property: the all-pairs longest-path matrix must be
 * transitively closed, i.e. d[i][j] >= d[i][k] + d[k][j] for every k
 * (otherwise the path through k would have been longer).
 */
TEST(MinDistInvariants, MatrixIsTransitivelyClosed)
{
    const auto machine = machine::cydra5();
    support::Rng rng(8801);
    for (int t = 0; t < 12; ++t) {
        const auto loop = workloads::generateLoop(rng, "closure");
        const auto g = graph::buildDepGraph(loop, machine);
        const auto sccs = graph::findSccs(g);
        const int ii = mii::computeTrueRecMii(g, sccs) + (t % 3);
        const mii::MinDistMatrix d(g, ii);
        const int n = d.size();
        for (int i = 0; i < n; ++i) {
            for (int k = 0; k < n; ++k) {
                if (d.at(i, k) == mii::MinDistMatrix::kMinusInf)
                    continue;
                for (int j = 0; j < n; ++j) {
                    if (d.at(k, j) == mii::MinDistMatrix::kMinusInf)
                        continue;
                    ASSERT_GE(d.at(i, j), d.at(i, k) + d.at(k, j))
                        << loop.name() << " i=" << i << " k=" << k
                        << " j=" << j;
                }
            }
        }
    }
}

/** Every edge must be reflected in the matrix directly. */
TEST(MinDistInvariants, DominatesEveryEdge)
{
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("state_frag");
    const auto g = graph::buildDepGraph(w.loop, machine);
    const int ii = 8;
    const mii::MinDistMatrix d(g, ii);
    for (const auto& edge : g.edges()) {
        ASSERT_GE(d.atVertex(edge.from, edge.to),
                  edge.delay - static_cast<std::int64_t>(ii) *
                                   edge.distance);
    }
}

/** Feasibility is monotone in II: once feasible, always feasible. */
TEST(MinDistInvariants, FeasibilityMonotoneInIi)
{
    const auto machine = machine::cydra5();
    support::Rng rng(5150);
    for (int t = 0; t < 15; ++t) {
        const auto loop = workloads::generateLoop(rng, "mono");
        const auto g = graph::buildDepGraph(loop, machine);
        const auto sccs = graph::findSccs(g);
        const int rec_mii = mii::computeTrueRecMii(g, sccs);
        if (rec_mii > 1) {
            EXPECT_FALSE(mii::MinDistMatrix(g, rec_mii - 1).feasible())
                << loop.name();
        }
        EXPECT_TRUE(mii::MinDistMatrix(g, rec_mii).feasible())
            << loop.name();
        EXPECT_TRUE(mii::MinDistMatrix(g, rec_mii + 3).feasible())
            << loop.name();
    }
}

/**
 * MRT round-trip property: a random sequence of reserve/release
 * operations never corrupts the table — after releasing everything the
 * table is empty, and conflicts() always agrees with reserve legality.
 */
TEST(MrtInvariants, RandomReserveReleaseRoundTrip)
{
    support::Rng rng(3117);
    const int ii = 5;
    const int resources = 4;
    const int ops = 12;
    sched::ModuloReservationTable mrt(ii, resources, ops);

    // One random single-use table per op.
    std::vector<machine::ReservationTable> tables;
    for (int op = 0; op < ops; ++op) {
        machine::ReservationTable table;
        table.addUse(rng.uniformInt(0, 3), rng.uniformInt(0, resources - 1));
        tables.push_back(table);
    }

    std::vector<bool> held(ops, false);
    std::vector<int> at(ops, 0);
    for (int step = 0; step < 2000; ++step) {
        const int op = rng.uniformInt(0, ops - 1);
        if (held[op]) {
            mrt.release(op);
            held[op] = false;
        } else {
            const int time = rng.uniformInt(0, 20);
            if (!mrt.conflicts(tables[op], time)) {
                mrt.reserve(op, tables[op], time);
                held[op] = true;
                at[op] = time;
            }
        }
        // Count invariant: one cell per held op (single-use tables).
        int expected = 0;
        for (bool h : held)
            expected += h;
        ASSERT_EQ(mrt.reservedCellCount(), expected);
    }
    for (int op = 0; op < ops; ++op) {
        if (held[op])
            mrt.release(op);
    }
    EXPECT_EQ(mrt.reservedCellCount(), 0);
}

/**
 * Generated loops keep the dependence-density band the Table 4 fit
 * relies on (edges per op between 1 and 4).
 */
TEST(WorkloadInvariants, EdgeDensityBand)
{
    const auto machine = machine::cydra5();
    support::Rng rng(9090);
    long long edges = 0, ops = 0;
    for (int t = 0; t < 120; ++t) {
        const auto loop = workloads::generateLoop(rng, "density");
        const auto g = graph::buildDepGraph(loop, machine);
        edges += g.numRealEdges();
        ops += g.numOps();
    }
    const double density = static_cast<double>(edges) / ops;
    EXPECT_GT(density, 1.0);
    EXPECT_LT(density, 4.0);
}

/** RecMII via the production path never looks below its start. */
TEST(MiiInvariants, ProductionSearchRespectsFloor)
{
    const auto machine = machine::cydra5();
    for (const char* name : {"init_store", "daxpy", "first_order_rec"}) {
        const auto w = workloads::kernelByName(name);
        const auto g = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(g);
        const int rec = mii::computeTrueRecMii(g, sccs);
        for (int floor : {1, rec, rec + 5}) {
            EXPECT_EQ(mii::computeRecMiiPerScc(g, sccs, floor),
                      std::max(rec, floor))
                << name << " floor " << floor;
        }
    }
}

} // namespace
