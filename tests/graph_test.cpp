#include <gtest/gtest.h>

#include "graph/delay_model.hpp"
#include "graph/graph_builder.hpp"
#include "ir/loop_builder.hpp"
#include "machine/cydra5.hpp"
#include "machine/machine_builder.hpp"
#include "machine/machines.hpp"
#include "support/error.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;
using graph::DelayMode;
using graph::DepKind;
using ir::Opcode;

/** Find an edge between two ops with the given kind; nullptr if absent. */
const graph::DepEdge*
findEdge(const graph::DepGraph& g, int from, int to, DepKind kind)
{
    for (const auto& edge : g.edges()) {
        if (edge.from == from && edge.to == to && edge.kind == kind)
            return &edge;
    }
    return nullptr;
}

TEST(DelayModelTest, Table1ExactColumn)
{
    // Flow: Latency(pred).
    EXPECT_EQ(dependenceDelay(DepKind::kFlow, 4, 1, DelayMode::kExact), 4);
    // Anti: 1 - Latency(succ); may be negative.
    EXPECT_EQ(dependenceDelay(DepKind::kAnti, 7, 4, DelayMode::kExact), -3);
    // Output: 1 + Latency(pred) - Latency(succ).
    EXPECT_EQ(dependenceDelay(DepKind::kOutput, 4, 2, DelayMode::kExact), 3);
    EXPECT_EQ(dependenceDelay(DepKind::kOutput, 1, 5, DelayMode::kExact),
              -3);
    // Control follows the flow rule.
    EXPECT_EQ(dependenceDelay(DepKind::kControl, 2, 9, DelayMode::kExact),
              2);
}

TEST(DelayModelTest, Table1ConservativeColumn)
{
    EXPECT_EQ(
        dependenceDelay(DepKind::kFlow, 4, 1, DelayMode::kConservative), 4);
    EXPECT_EQ(
        dependenceDelay(DepKind::kAnti, 7, 4, DelayMode::kConservative), 0);
    EXPECT_EQ(
        dependenceDelay(DepKind::kOutput, 4, 2, DelayMode::kConservative),
        4);
}

class GraphBuilderTest : public ::testing::Test
{
  protected:
    machine::MachineModel machine_ = machine::cydra5();
};

TEST_F(GraphBuilderTest, FlowEdgesCarryOperandDistance)
{
    const auto w = workloads::kernelByName("dot_bs4");
    const auto g = graph::buildDepGraph(w.loop, machine_);
    // Find the accumulator self-edge: s = add s[4], t.
    bool found = false;
    for (const auto& edge : g.edges()) {
        if (edge.kind == DepKind::kFlow && edge.from == edge.to &&
            edge.distance == 4) {
            found = true;
            EXPECT_EQ(edge.delay, machine_.latency(Opcode::kAdd));
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(GraphBuilderTest, StartAndStopConnectEveryOp)
{
    const auto w = workloads::kernelByName("daxpy");
    const auto g = graph::buildDepGraph(w.loop, machine_);
    for (int op = 0; op < g.numOps(); ++op) {
        EXPECT_NE(findEdge(g, g.start(), op, DepKind::kPseudo), nullptr);
        const auto* stop_edge = findEdge(g, op, g.stop(), DepKind::kPseudo);
        ASSERT_NE(stop_edge, nullptr);
        EXPECT_EQ(stop_edge->delay,
                  machine_.latency(w.loop.operation(op).opcode));
    }
    EXPECT_EQ(g.numEdges() - g.numRealEdges(), 2 * g.numOps());
}

TEST_F(GraphBuilderTest, MemoryFlowDependenceAcrossIterations)
{
    // mem_recurrence stores A[i] and loads A[i-1]: flow distance 1.
    const auto w = workloads::kernelByName("mem_recurrence");
    const auto g = graph::buildDepGraph(w.loop, machine_);
    int store_id = -1, load_prev = -1;
    for (const auto& op : w.loop.operations()) {
        if (op.isStore())
            store_id = op.id;
        if (op.isLoad() && op.memRef->offset == -1)
            load_prev = op.id;
    }
    ASSERT_GE(store_id, 0);
    ASSERT_GE(load_prev, 0);
    const auto* edge = findEdge(g, store_id, load_prev, DepKind::kFlow);
    ASSERT_NE(edge, nullptr);
    EXPECT_TRUE(edge->throughMemory);
    EXPECT_EQ(edge->distance, 1);
    EXPECT_EQ(edge->delay, machine_.latency(Opcode::kStore));
}

TEST_F(GraphBuilderTest, SameIterationMemoryAntiDependence)
{
    // daxpy loads Y[i] then stores Y[i]: anti, distance 0.
    const auto w = workloads::kernelByName("daxpy");
    const auto g = graph::buildDepGraph(w.loop, machine_);
    int load_y = -1, store_y = -1;
    for (const auto& op : w.loop.operations()) {
        if (op.isLoad() && w.loop.arrays()[op.memRef->array].name == "Y")
            load_y = op.id;
        if (op.isStore())
            store_y = op.id;
    }
    const auto* anti = findEdge(g, load_y, store_y, DepKind::kAnti);
    ASSERT_NE(anti, nullptr);
    EXPECT_EQ(anti->distance, 0);
    // Exact anti delay: 1 - Latency(store) = 0.
    EXPECT_EQ(anti->delay, 0);
    // And the store->load flow dependence into the NEXT iterations does
    // not exist (offsets equal): instead there is a distance... store Y[i]
    // vs load Y[i] in a later iteration never overlaps (same offset), so
    // no flow edge from store to load.
    EXPECT_EQ(findEdge(g, store_y, load_y, DepKind::kFlow), nullptr);
}

TEST_F(GraphBuilderTest, StridedAccessesThatNeverMeetGetNoEdge)
{
    // iccg_like loads X[2i] and X[2i+1]: offset difference 1 is not
    // divisible by stride 2, so no dependence with the store to V.
    ir::LoopBuilder b("stride_test");
    b.recurrence("ax");
    b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 3), b.imm(24)});
    b.load("e", "X", 0, b.reg("ax"), "", 2);
    b.store("X", 1, b.reg("ax"), b.reg("e"), "", 2);
    b.closeLoopBackSubstituted();
    const auto loop = b.build();
    const auto g = graph::buildDepGraph(loop, machine_);
    // Load reads X[2i], store writes X[2i+1]: never alias.
    EXPECT_EQ(findEdge(g, 1, 2, DepKind::kAnti), nullptr);
    EXPECT_EQ(findEdge(g, 2, 1, DepKind::kFlow), nullptr);
}

TEST_F(GraphBuilderTest, StridedDivisibleOffsetsGetScaledDistance)
{
    ir::LoopBuilder b("stride_dep");
    b.recurrence("ax");
    b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 3), b.imm(24)});
    b.load("v", "X", -4, b.reg("ax"), "", 2); // reads X[2i-4] = X[2(i-2)]
    b.store("X", 0, b.reg("ax"), b.reg("v"), "", 2);
    b.closeLoopBackSubstituted();
    const auto loop = b.build();
    const auto g = graph::buildDepGraph(loop, machine_);
    const auto* edge = findEdge(g, 2, 1, DepKind::kFlow);
    ASSERT_NE(edge, nullptr);
    EXPECT_EQ(edge->distance, 2); // (0 - (-4)) / 2
}

TEST_F(GraphBuilderTest, MixedStridesFallBackToConservativeEdges)
{
    ir::LoopBuilder b("mixed_stride");
    b.recurrence("ax");
    b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 3), b.imm(24)});
    b.load("v", "X", 0, b.reg("ax"), "", 1);
    b.store("X", 0, b.reg("ax"), b.reg("v"), "", 2);
    b.closeLoopBackSubstituted();
    const auto loop = b.build();
    const auto g = graph::buildDepGraph(loop, machine_);
    EXPECT_NE(findEdge(g, 1, 2, DepKind::kAnti), nullptr); // program order
    // Both directions across iterations.
    bool cross = false;
    for (const auto& edge : g.edges())
        cross = cross || (edge.throughMemory && edge.distance == 1);
    EXPECT_TRUE(cross);
}

TEST_F(GraphBuilderTest, GuardEdgesAreControlDependences)
{
    const auto w = workloads::kernelByName("cond_store");
    const auto g = graph::buildDepGraph(w.loop, machine_);
    bool found = false;
    for (const auto& edge : g.edges())
        found = found || edge.kind == DepKind::kControl;
    EXPECT_TRUE(found);
}

TEST_F(GraphBuilderTest, NonDsaModeAddsAntiAndOutputEdges)
{
    const auto w = workloads::kernelByName("raw_counter");
    graph::GraphOptions options;
    options.dsaForm = false;
    const auto g = graph::buildDepGraph(w.loop, machine_, options);
    bool anti = false, output = false;
    for (const auto& edge : g.edges()) {
        anti = anti || edge.kind == DepKind::kAnti;
        output = output || edge.kind == DepKind::kOutput;
    }
    EXPECT_TRUE(anti);
    EXPECT_TRUE(output);
}

TEST_F(GraphBuilderTest, NonDsaModeRejectsLongDistances)
{
    const auto w = workloads::kernelByName("daxpy"); // distance-3 counter
    graph::GraphOptions options;
    options.dsaForm = false;
    EXPECT_THROW(graph::buildDepGraph(w.loop, machine_, options),
                 support::Error);
}

TEST_F(GraphBuilderTest, ConservativeDelaysDifferFromExact)
{
    const auto w = workloads::kernelByName("daxpy");
    graph::GraphOptions exact;
    graph::GraphOptions conservative;
    conservative.delayMode = DelayMode::kConservative;
    const auto ge = graph::buildDepGraph(w.loop, machine_, exact);
    const auto gc = graph::buildDepGraph(w.loop, machine_, conservative);
    // The anti edge (load Y -> store Y) has delay 0 exact, 0 conservative?
    // Exact: 1 - L(store) = 0; conservative: 0. Equal here, so check an
    // output-dependence case instead via the edge sets being same-sized.
    EXPECT_EQ(ge.numEdges(), gc.numEdges());
    // Every conservative delay >= exact delay.
    for (int e = 0; e < ge.numEdges(); ++e)
        EXPECT_GE(gc.edge(e).delay, ge.edge(e).delay);
}

TEST_F(GraphBuilderTest, UnsupportedOpcodeRejected)
{
    machine::MachineBuilder b("no-mul");
    const auto alu = b.addResource("alu");
    b.opcode(Opcode::kAddrSub, 1).simpleAlternative("alu", alu);
    b.opcode(Opcode::kBranch, 1).simpleAlternative("alu", alu);
    const auto m = b.build();

    const auto w = workloads::kernelByName("daxpy");
    EXPECT_THROW(graph::buildDepGraph(w.loop, m), support::Error);
}

TEST_F(GraphBuilderTest, EdgeDensityIsAFewPerOp)
{
    // The paper measures about three edges per operation (E = 3.0036N).
    // Our IR has no universal predicate input, so expect 1.5-3.5.
    double total_edges = 0, total_ops = 0;
    for (const auto& w : workloads::kernelLibrary()) {
        const auto g = graph::buildDepGraph(w.loop, machine_);
        total_edges += g.numRealEdges();
        total_ops += g.numOps();
    }
    const double density = total_edges / total_ops;
    EXPECT_GT(density, 1.0);
    EXPECT_LT(density, 4.0);
}

} // namespace
