#include <gtest/gtest.h>

#include "machine/cydra5.hpp"
#include "machine/machine_builder.hpp"
#include "machine/machines.hpp"
#include "machine/reservation_table.hpp"
#include "support/error.hpp"

namespace {

using namespace ims;
using ir::Opcode;
using machine::ReservationTable;
using machine::TableKind;

TEST(ReservationTableTest, KindClassificationPerSection21)
{
    ReservationTable simple;
    simple.addUse(0, 0);
    EXPECT_EQ(simple.kind(), TableKind::kSimple);

    ReservationTable block;
    block.addBlockUse(0, 3, 0);
    EXPECT_EQ(block.kind(), TableKind::kBlock);

    // Single resource but not starting at issue: complex.
    ReservationTable late;
    late.addUse(1, 0);
    EXPECT_EQ(late.kind(), TableKind::kComplex);

    // Multiple resources: complex.
    ReservationTable multi;
    multi.addUse(0, 0);
    multi.addUse(1, 1);
    EXPECT_EQ(multi.kind(), TableKind::kComplex);

    // Gap in a single-resource usage: complex.
    ReservationTable gap;
    gap.addUse(0, 0);
    gap.addUse(2, 0);
    EXPECT_EQ(gap.kind(), TableKind::kComplex);
}

TEST(ReservationTableTest, LengthAndNormalization)
{
    ReservationTable table;
    table.addUse(3, 1);
    table.addUse(0, 2);
    table.addUse(3, 1); // duplicate collapses
    EXPECT_EQ(table.length(), 4);
    EXPECT_EQ(table.uses().size(), 2u);
    EXPECT_EQ(table.uses().front().time, 0);
}

/**
 * Reproduce the Figure 1 collision analysis with the figure's shared-bus
 * tables: "an ALU operation and a multiply cannot be scheduled for issue
 * at the same time since they will collide in their usage of the source
 * buses. Furthermore, although a multiply may be issued any number of
 * cycles after an add, an add may not be issued two cycles after a
 * multiply since this will result in a collision on the result bus."
 */
TEST(ReservationTableTest, Figure1CollisionAnalysis)
{
    const machine::ResourceId src_a = 0, src_b = 1, alu1 = 2, alu2 = 3,
                              mul1 = 4, mul2 = 5, mul3 = 6, result = 7;
    ReservationTable add;
    add.addUse(0, src_a);
    add.addUse(0, src_b);
    add.addUse(1, alu1);
    add.addUse(2, alu2);
    add.addUse(3, result);

    ReservationTable mul;
    mul.addUse(0, src_a);
    mul.addUse(0, src_b);
    mul.addUse(1, mul1);
    mul.addUse(2, mul2);
    mul.addUse(3, mul3);
    mul.addUse(4, result);

    // collidesWith(other, delta): *this* issued delta cycles after other.
    // Same-cycle issue collides (source buses).
    EXPECT_TRUE(add.collidesWith(mul, 0));
    EXPECT_TRUE(mul.collidesWith(add, 0));
    // A multiply issued k >= 1 cycles after an add never collides.
    for (int k = 1; k <= 8; ++k)
        EXPECT_FALSE(mul.collidesWith(add, k)) << "delta " << k;
    // An add issued shortly after a multiply collides on the result bus:
    // with these tables the add's result (delta + 3) meets the multiply's
    // (4) at delta == 1. (The paper's Figure 1 multiplier is one stage
    // deeper, putting the same collision at delta == 2.)
    EXPECT_TRUE(add.collidesWith(mul, 1));
    EXPECT_FALSE(add.collidesWith(mul, 2));
}

TEST(ReservationTableTest, SelfCollisionViaDelta)
{
    ReservationTable block;
    block.addBlockUse(0, 2, 0);
    EXPECT_TRUE(block.collidesWith(block, 1));
    EXPECT_TRUE(block.collidesWith(block, 2));
    EXPECT_FALSE(block.collidesWith(block, 3));
}

TEST(MachineBuilderTest, BuildsAndQueries)
{
    machine::MachineBuilder b("toy");
    const auto alu = b.addResource("alu");
    const auto mem = b.addResource("mem");
    b.opcode(Opcode::kAdd, 2).simpleAlternative("alu", alu);
    b.opcode(Opcode::kLoad, 5)
        .simpleAlternative("mem", mem)
        .blockAlternative("alu-path", alu, 2);
    const machine::MachineModel m = b.build();

    EXPECT_EQ(m.numResources(), 2);
    EXPECT_TRUE(m.supports(Opcode::kAdd));
    EXPECT_FALSE(m.supports(Opcode::kDiv));
    EXPECT_EQ(m.latency(Opcode::kLoad), 5);
    EXPECT_EQ(m.numAlternatives(Opcode::kLoad), 2);
    EXPECT_EQ(m.resourceName(0), "alu");
    EXPECT_THROW(m.info(Opcode::kDiv), support::Error);
}

TEST(MachineBuilderTest, PseudoOpsImplicitlySupported)
{
    machine::MachineBuilder b("toy");
    const auto alu = b.addResource("alu");
    b.opcode(Opcode::kAdd, 1).simpleAlternative("alu", alu);
    const machine::MachineModel m = b.build();
    EXPECT_TRUE(m.supports(Opcode::kStart));
    EXPECT_EQ(m.latency(Opcode::kStop), 0);
    EXPECT_TRUE(m.info(Opcode::kStart).alternatives[0].table.empty());
}

TEST(Cydra5Test, MatchesTable2Latencies)
{
    const auto m = machine::cydra5();
    EXPECT_EQ(m.latency(Opcode::kLoad), 20); // paper's substituted latency
    EXPECT_EQ(m.latency(Opcode::kAddrAdd), 3);
    EXPECT_EQ(m.latency(Opcode::kAdd), 4);
    EXPECT_EQ(m.latency(Opcode::kMul), 5);
    EXPECT_EQ(m.latency(Opcode::kDiv), 22);
    EXPECT_EQ(m.latency(Opcode::kSqrt), 26);
    EXPECT_EQ(m.latency(Opcode::kBranch), 1);
}

TEST(Cydra5Test, AlternativesMatchUnitCounts)
{
    const auto m = machine::cydra5();
    EXPECT_EQ(m.numAlternatives(Opcode::kLoad), 2);  // two memory ports
    EXPECT_EQ(m.numAlternatives(Opcode::kAddrAdd), 2);
    EXPECT_EQ(m.numAlternatives(Opcode::kAdd), 1);
    EXPECT_EQ(m.numAlternatives(Opcode::kMul), 1);
    EXPECT_EQ(m.numAlternatives(Opcode::kCopy), 3); // adder or either AALU
}

TEST(Cydra5Test, AdderAndMultiplierTablesAreComplex)
{
    const auto m = machine::cydra5();
    EXPECT_EQ(m.info(Opcode::kAdd).alternatives[0].table.kind(),
              TableKind::kComplex);
    EXPECT_EQ(m.info(Opcode::kMul).alternatives[0].table.kind(),
              TableKind::kComplex);
    EXPECT_EQ(m.info(Opcode::kLoad).alternatives[0].table.kind(),
              TableKind::kSimple);
}

TEST(Cydra5Test, DivBlocksTheMultiplierStage)
{
    const auto m = machine::cydra5();
    const auto& div = m.info(Opcode::kDiv).alternatives[0].table;
    // 18 consecutive uses of the first multiplier stage.
    int stage_uses = 0;
    for (const auto& use : div.uses()) {
        if (m.resourceName(use.resource) == "mult-stage-1")
            ++stage_uses;
    }
    EXPECT_EQ(stage_uses, 18);
}

TEST(OtherMachinesTest, Clean64HasOnlySimpleOrBlockTables)
{
    const auto m = machine::clean64();
    for (int k = 0; k < ir::kNumRealOpcodes; ++k) {
        const auto opcode = static_cast<Opcode>(k);
        if (!m.supports(opcode))
            continue;
        for (const auto& alt : m.info(opcode).alternatives)
            EXPECT_NE(alt.table.kind(), TableKind::kComplex)
                << ir::opcodeName(opcode);
    }
}

TEST(OtherMachinesTest, WideVliwHasFourMemPorts)
{
    const auto m = machine::wideVliw();
    EXPECT_EQ(m.numAlternatives(Opcode::kLoad), 4);
    EXPECT_EQ(m.numAlternatives(Opcode::kAdd), 2);
}

TEST(OtherMachinesTest, ScalarToySupportsEverything)
{
    const auto m = machine::scalarToy();
    for (int k = 0; k < ir::kNumRealOpcodes; ++k)
        EXPECT_TRUE(m.supports(static_cast<Opcode>(k)));
}

TEST(MachineModelTest, ToStringMentionsResourcesAndKinds)
{
    const auto m = machine::cydra5();
    const std::string text = m.toString();
    EXPECT_NE(text.find("mem-port-0"), std::string::npos);
    EXPECT_NE(text.find("complex"), std::string::npos);
    EXPECT_NE(text.find("load"), std::string::npos);
}

TEST(MachineModelTest, UndeclaredResourceRejected)
{
    ReservationTable bad;
    bad.addUse(0, 5); // resource 5 does not exist
    std::map<ir::Opcode, machine::OpcodeInfo> opcodes;
    machine::OpcodeInfo info;
    info.latency = 1;
    info.alternatives = {machine::Alternative{"x", bad}};
    opcodes[Opcode::kAdd] = info;
    EXPECT_THROW(machine::MachineModel("bad", {"r0"}, opcodes),
                 support::Error);
}

} // namespace
