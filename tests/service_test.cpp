/**
 * @file
 * Tests for the scheduling service: content-addressed cache identity
 * (hits bit-identical to cold runs), LRU eviction, persistence via the
 * canonical round-trip formats, hash-collision safety, admission
 * control, per-client round-robin fairness, and the options codec the
 * cache key is built from.
 */
#include <gtest/gtest.h>

#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeliner.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "machine/cydra5.hpp"
#include "service/options_codec.hpp"
#include "service/schedule_cache.hpp"
#include "service/schedule_service.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_loops.hpp"

namespace {

using namespace ims;

/** Request corpus: every kernel-library loop plus `fuzz` generated ones. */
std::vector<std::string>
corpusTexts(int fuzz)
{
    std::vector<std::string> texts;
    for (const auto& workload : workloads::kernelLibrary())
        texts.push_back(ir::printLoop(workload.loop));
    support::Rng rng(0x5e21);
    const auto profile = workloads::fuzzProfile();
    for (int i = 0; i < fuzz; ++i)
        texts.push_back(ir::printLoop(workloads::generateLoop(
            rng, "svc_t_" + std::to_string(i), profile)));
    return texts;
}

std::uint64_t
fingerprintOf(const service::ServiceResponse& response)
{
    return service::fingerprintResult(*response.loop,
                                      response.model->model,
                                      *response.result);
}

TEST(ScheduleCacheTest, HitsAreBitIdenticalToColdRuns)
{
    // Kernel corpus + 200 fuzz loops: the first request is a miss, the
    // second a hit, and both must fingerprint identically to a direct
    // single-threaded pipeline run (the cold oracle).
    service::ScheduleService server(
        service::ServiceOptions{}.withThreads(1));
    const core::SoftwarePipeliner oracle(machine::cydra5());

    for (const auto& text : corpusTexts(200)) {
        service::ServiceRequest request;
        request.loopText = text;

        const auto cold = server.scheduleNow(request);
        ASSERT_TRUE(cold.ok()) << cold.errorMessage;
        EXPECT_FALSE(cold.cacheHit);

        const auto hit = server.scheduleNow(request);
        ASSERT_TRUE(hit.ok());
        EXPECT_TRUE(hit.cacheHit) << hit.loopName;
        // The cache hands back the very object it memoized.
        EXPECT_EQ(hit.result.get(), cold.result.get());

        const ir::Loop loop = ir::parseLoop(text);
        const auto reference =
            oracle.pipeline(core::PipelineRequest(loop));
        const std::uint64_t expected = service::fingerprintResult(
            loop, oracle.machine(), reference);
        EXPECT_EQ(fingerprintOf(cold), expected) << cold.loopName;
        EXPECT_EQ(fingerprintOf(hit), expected) << hit.loopName;
    }
}

TEST(ScheduleCacheTest, ConcurrentSubmissionsStayIdentical)
{
    // Same corpus slice through the async queue with several workers and
    // duplicated requests racing each other: every response — whichever
    // of the duplicates won the insert — must match the cold oracle.
    service::ScheduleService server(
        service::ServiceOptions{}.withThreads(4));
    const core::SoftwarePipeliner oracle(machine::cydra5());

    const auto texts = corpusTexts(20);
    std::vector<std::future<service::ServiceResponse>> futures;
    for (int repeat = 0; repeat < 3; ++repeat)
        for (std::size_t i = 0; i < texts.size(); ++i) {
            service::ServiceRequest request;
            request.client = "c" + std::to_string(i % 3);
            request.loopText = texts[i];
            futures.push_back(server.submit(std::move(request)));
        }

    std::vector<std::uint64_t> expected;
    for (const auto& text : texts) {
        const ir::Loop loop = ir::parseLoop(text);
        expected.push_back(service::fingerprintResult(
            loop, oracle.machine(),
            oracle.pipeline(core::PipelineRequest(loop))));
    }
    for (std::size_t f = 0; f < futures.size(); ++f) {
        const auto response = futures[f].get();
        ASSERT_TRUE(response.ok()) << response.errorMessage;
        EXPECT_EQ(fingerprintOf(response), expected[f % texts.size()]);
    }
}

TEST(ScheduleCacheTest, EvictsLeastRecentlyUsedUnderSmallCapacity)
{
    service::ScheduleService server(
        service::ServiceOptions{}
            .withThreads(1)
            .withCache(service::CacheOptions{/*capacity=*/4,
                                             /*shards=*/1}));
    const auto texts = corpusTexts(0);
    ASSERT_GE(texts.size(), 8u);

    for (int i = 0; i < 8; ++i) {
        service::ServiceRequest request;
        request.loopText = texts[static_cast<std::size_t>(i)];
        ASSERT_TRUE(server.scheduleNow(request).ok());
    }
    auto stats = server.stats();
    EXPECT_EQ(stats.cache.entries, 4u);
    EXPECT_EQ(stats.cache.evictions, 4u);

    // The first loop was evicted: asking again is a miss...
    service::ServiceRequest request;
    request.loopText = texts[0];
    EXPECT_FALSE(server.scheduleNow(request).cacheHit);
    // ...while the most recent one is still resident.
    request.loopText = texts[7];
    EXPECT_TRUE(server.scheduleNow(request).cacheHit);
}

TEST(ScheduleCacheTest, PersistenceRoundTripServesHitsAfterRestart)
{
    const auto texts = corpusTexts(3);
    std::vector<std::uint64_t> fingerprints;
    std::string saved;
    {
        service::ScheduleService server(
            service::ServiceOptions{}.withThreads(1));
        for (std::size_t i = 0; i < 6; ++i) {
            service::ServiceRequest request;
            request.loopText = texts[i];
            const auto response = server.scheduleNow(request);
            ASSERT_TRUE(response.ok());
            fingerprints.push_back(fingerprintOf(response));
        }
        saved = server.saveCacheText();
    }

    // "Restart": a fresh service re-materializes the saved request set
    // by re-running the deterministic pipeline, so every request that
    // was cached before the save is a bit-identical hit afterwards.
    service::ScheduleService reloaded(
        service::ServiceOptions{}.withThreads(1));
    EXPECT_EQ(reloaded.loadCacheText(saved), 6u);
    for (std::size_t i = 0; i < 6; ++i) {
        service::ServiceRequest request;
        request.loopText = texts[i];
        const auto response = reloaded.scheduleNow(request);
        ASSERT_TRUE(response.ok());
        EXPECT_TRUE(response.cacheHit) << response.loopName;
        EXPECT_EQ(fingerprintOf(response), fingerprints[i]);
    }
    // Loading the same document again is an idempotent no-op.
    EXPECT_EQ(reloaded.loadCacheText(saved), 0u);

    EXPECT_THROW(reloaded.loadCacheText("bogus header\n"), support::Error);
}

TEST(ScheduleCacheTest, HashCollisionsNeverShareAnEntry)
{
    // Forge two keys with identical digests but different material: the
    // full-material compare must keep them apart (lookup of the second
    // key misses; both can be resident simultaneously).
    service::ScheduleCache cache(service::CacheOptions{16, 1});
    auto a = service::CacheKey::make("loop a\n", "machine m\n", "opts\n");
    auto b = service::CacheKey::make("loop b\n", "machine m\n", "opts\n");
    ASSERT_NE(a.material(), b.material());
    b.hash = a.hash; // simulate a 64-bit collision

    cache.insert(a, core::PipelineResult{});
    EXPECT_EQ(cache.lookup(b), nullptr);
    EXPECT_GE(cache.stats().hashCollisions, 1u);

    cache.insert(b, core::PipelineResult{});
    EXPECT_NE(cache.lookup(a), nullptr);
    EXPECT_NE(cache.lookup(b), nullptr);
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ScheduleServiceTest, OverloadedQueueRejectsWithStructuredCode)
{
    // One worker, queue depth 1. Occupy the worker by blocking inside
    // the first request's completion callback, fill the single queue
    // slot, and verify the next submission is rejected inline with the
    // documented "service.overloaded" code.
    service::ScheduleService server(service::ServiceOptions{}
                                        .withThreads(1)
                                        .withMaxQueuedRequests(1));
    const auto texts = corpusTexts(0);

    std::promise<void> gate;
    std::shared_future<void> opened(gate.get_future());
    service::ServiceRequest blocker;
    blocker.client = "blocker";
    blocker.loopText = texts[0];
    server.submitAsync(blocker, [opened](const service::ServiceResponse&) {
        opened.wait();
    });
    // Wait until the worker has dequeued the blocker (queue empty again).
    while (server.stats().queued != 0)
        std::this_thread::yield();

    service::ServiceRequest queued;
    queued.client = "q";
    queued.loopText = texts[1];
    auto accepted = server.submit(queued);

    service::ServiceRequest overflow;
    overflow.client = "q";
    overflow.loopText = texts[2];
    auto rejected_future = server.submit(overflow);
    // The rejection is delivered inline, before the gate opens.
    const auto rejected = rejected_future.get();
    EXPECT_EQ(rejected.status, service::ServiceResponse::Status::kRejected);
    EXPECT_EQ(rejected.errorCode, "service.overloaded");
    EXPECT_FALSE(rejected.ok());

    gate.set_value();
    EXPECT_TRUE(accepted.get().ok());
    server.drain();
    EXPECT_EQ(server.stats().rejected, 1u);
}

TEST(ScheduleServiceTest, DrainsClientsRoundRobin)
{
    // Three clients enqueue three requests each while the single worker
    // is blocked; the service must drain them strictly interleaved
    // (a,b,c,a,b,c,a,b,c), not in arrival order (a,a,a,b,b,b,...).
    service::ScheduleService server(
        service::ServiceOptions{}.withThreads(1));
    const auto texts = corpusTexts(0);

    std::promise<void> gate;
    std::shared_future<void> opened(gate.get_future());
    service::ServiceRequest blocker;
    blocker.client = "blocker";
    blocker.loopText = texts[0];
    server.submitAsync(blocker, [opened](const service::ServiceResponse&) {
        opened.wait();
    });
    while (server.stats().queued != 0)
        std::this_thread::yield();

    std::mutex order_mutex;
    std::vector<std::string> order;
    for (const std::string client : {"a", "b", "c"})
        for (int i = 0; i < 3; ++i) {
            service::ServiceRequest request;
            request.client = client;
            request.loopText = texts[static_cast<std::size_t>(1 + i)];
            server.submitAsync(request,
                               [&, client](const service::ServiceResponse&) {
                                   const std::lock_guard<std::mutex> lock(
                                       order_mutex);
                                   order.push_back(client);
                               });
        }

    gate.set_value();
    server.drain();
    const std::vector<std::string> expected = {"a", "b", "c", "a", "b",
                                               "c", "a", "b", "c"};
    EXPECT_EQ(order, expected);
}

TEST(ScheduleServiceTest, WorkerThreadsClampToAtLeastOne)
{
    // hardware_concurrency() may legitimately return 0; the shared
    // resolveWorkerThreads clamp keeps both the service pool and the
    // batch pipeliner at >= 1 worker.
    EXPECT_GE(support::resolveWorkerThreads(0), 1);
    EXPECT_GE(support::resolveWorkerThreads(-3), 1);
    EXPECT_EQ(support::resolveWorkerThreads(5), 5);
    EXPECT_EQ(support::resolveThreads(0, 0), 1);

    service::ScheduleService defaulted(
        service::ServiceOptions{}.withThreads(0));
    EXPECT_GE(defaulted.workerThreads(), 1);
    service::ScheduleService negative(
        service::ServiceOptions{}.withThreads(-1));
    EXPECT_GE(negative.workerThreads(), 1);
}

TEST(ScheduleServiceTest, StructuredErrorsForBadRequests)
{
    service::ScheduleService server(
        service::ServiceOptions{}.withThreads(1));

    service::ServiceRequest unknown;
    unknown.machine = "no-such-machine";
    unknown.loopText = "loop x\n";
    auto response = server.scheduleNow(unknown);
    EXPECT_EQ(response.status, service::ServiceResponse::Status::kError);
    EXPECT_EQ(response.errorCode, "service.unknown_machine");

    service::ServiceRequest malformed;
    malformed.loopText = "this is not a loop";
    response = server.scheduleNow(malformed);
    EXPECT_EQ(response.status, service::ServiceResponse::Status::kError);
    EXPECT_EQ(response.errorCode, "service.bad_loop");
    EXPECT_EQ(server.stats().errors, 2u);
}

TEST(ModelRegistryTest, RegistersAndLooksUpMachines)
{
    service::ModelRegistry registry;
    const auto names = registry.names();
    EXPECT_EQ(names.size(), 4u);
    EXPECT_NE(registry.lookup("cydra5"), nullptr);
    EXPECT_EQ(registry.lookup("nope"), nullptr);

    // Registering by text round-trips through machine_io: the canonical
    // text the registry stores is the printMachine of what it parsed.
    const auto cydra = registry.lookup("cydra5");
    registry.registerText("copy", cydra->canonicalText);
    const auto copy = registry.lookup("copy");
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(copy->canonicalText, cydra->canonicalText);

    EXPECT_THROW(registry.registerText("bad", "resource r0\n"),
                 support::Error);
}

TEST(OptionsCodecTest, CanonicalTextRoundTripsAndNormalizes)
{
    // Round trip: parse(canonical) reproduces the canonical bytes.
    const core::PipelinerOptions defaults;
    const std::string canonical = service::canonicalOptionsText(defaults);
    EXPECT_EQ(service::canonicalOptionsText(
                  service::parseOptionsText(canonical)),
              canonical);

    // Semantic knobs change the key...
    EXPECT_NE(service::canonicalOptionsText(
                  core::PipelinerOptions{}.withBudgetRatio(6.0)),
              canonical);
    EXPECT_NE(service::canonicalOptionsText(
                  core::PipelinerOptions{}.withScheduler(
                      sched::SchedulerStrategy::kSlack)),
              canonical);
    EXPECT_NE(service::canonicalOptionsText(
                  core::PipelinerOptions{}.withRandomSeed(99)),
              canonical);

    // ...while the II-search strategy and thread count are normalized
    // away (racing is bit-identical to linear at any thread count) and
    // telemetry sinks never reach the key.
    EXPECT_EQ(service::canonicalOptionsText(
                  core::PipelinerOptions{}.withIiSearch(
                      sched::IiSearchKind::kRacing, 8)),
              canonical);

    EXPECT_THROW(service::parseOptionsText("nonsense 1\n"),
                 support::Error);
}

} // namespace
