/**
 * @file
 * Tests of the differential fuzzing subsystem: machine generator
 * validity, campaign determinism, the clean smoke run, and the
 * end-to-end acceptance path — an injected dependence-delay fault must
 * be caught by the sim-equivalence oracle and auto-minimized into a
 * replayable reproducer.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "fuzz/campaign.hpp"
#include "fuzz/machine_gen.hpp"
#include "fuzz/minimizer.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/reproducer.hpp"
#include "graph/delay_model.hpp"
#include "ir/parser.hpp"
#include "machine/cydra5.hpp"
#include "machine/machine_io.hpp"
#include "support/rng.hpp"
#include "workloads/kernels.hpp"

namespace ims {
namespace {

/** RAII reset of the injected-fault hook, so no test leaks it. */
struct FaultGuard
{
    explicit FaultGuard(bool enabled)
    {
        graph::setDelayFaultForTesting(enabled);
    }
    ~FaultGuard() { graph::setDelayFaultForTesting(false); }
};

TEST(MachineGen, GeneratedMachinesAreAlwaysComplete)
{
    support::Rng rng(99);
    bool saw_single = false;
    bool saw_wide = false;
    for (int i = 0; i < 100; ++i) {
        const machine::MachineModel machine =
            fuzz::generateMachine(rng, "gm_" + std::to_string(i));
        ASSERT_GE(machine.numResources(), 1);
        saw_single = saw_single || machine.numResources() == 1;
        saw_wide = saw_wide || machine.numResources() > 64;
        for (int op = 0; op < ir::kNumRealOpcodes; ++op) {
            const auto opcode = static_cast<ir::Opcode>(op);
            ASSERT_TRUE(machine.supports(opcode)) << machine.name();
            ASSERT_GE(machine.numAlternatives(opcode), 1);
        }
    }
    // The degenerate shapes must actually occur (they are the point).
    EXPECT_TRUE(saw_single);
    EXPECT_TRUE(saw_wide);
}

TEST(Oracles, CleanOnKernelLibrarySample)
{
    const auto machine = machine::cydra5();
    const fuzz::OracleOptions oracle;
    int checked = 0;
    for (const auto& workload : workloads::kernelLibrary()) {
        if (workload.loop.size() > 20)
            continue; // keep the test fast
        const auto verdict = fuzz::runOracles(
            workload.loop, machine, core::PipelinerOptions{}, oracle);
        EXPECT_FALSE(verdict.failed())
            << workload.loop.name() << ": " << verdict.code << ": "
            << verdict.message;
        ++checked;
    }
    EXPECT_GT(checked, 10);
}

TEST(Campaign, ReportIsDeterministicAcrossRunsAndThreadCounts)
{
    fuzz::CampaignOptions options;
    options.seed = 20260806;
    options.cases = 25;
    options.reproDir = "";

    options.threads = 4;
    const auto first = fuzz::runCampaign(options);
    const auto second = fuzz::runCampaign(options);
    options.threads = 1;
    const auto serial = fuzz::runCampaign(options);

    EXPECT_EQ(first.toJson(), second.toJson());
    EXPECT_EQ(first.toJson(), serial.toJson());
}

// The racing II search must be invisible in the report: same cases under
// linear and racing pipelines, at different campaign and race thread
// counts, produce byte-identical JSON (the thread-invariance oracle from
// ISSUE.md, exercised through the campaign's sim-equivalence stack).
TEST(Campaign, RacingIiSearchIsThreadInvariant)
{
    fuzz::CampaignOptions options;
    options.seed = 20260806;
    options.cases = 30;
    options.reproDir = "";

    options.threads = 1;
    const auto linear = fuzz::runCampaign(options);

    options.pipeline = core::PipelinerOptions{}.withIiSearch(
        sched::IiSearchKind::kRacing, 2);
    const auto racing_serial = fuzz::runCampaign(options);
    options.threads = 4;
    const auto racing_parallel = fuzz::runCampaign(options);

    EXPECT_EQ(linear.toJson(), racing_serial.toJson());
    EXPECT_EQ(linear.toJson(), racing_parallel.toJson());
}

TEST(Campaign, SmokeRunIsClean)
{
    fuzz::CampaignOptions options;
    options.seed = 1994;
    options.cases = 60;
    options.reproDir = "";
    const auto report = fuzz::runCampaign(options);
    EXPECT_EQ(report.clean, report.cases);
    EXPECT_TRUE(report.findings.empty())
        << report.findings.front().code << ": "
        << report.findings.front().message;
}

TEST(Campaign, InjectedDelayFaultIsCaughtMinimizedAndReplayable)
{
    const FaultGuard fault(true);

    fuzz::CampaignOptions options;
    options.seed = 404;
    options.cases = 20;
    // Memory-carried recurrences are exactly the shape the injected bug
    // (memory flow delay forced to 0) corrupts; make every case one.
    options.profile.pInit = 0.0;
    options.profile.pStreaming = 0.0;
    options.profile.pReduction = 0.0;
    options.profile.pPredicated = 0.0;
    options.profile.pRecurrence = 1.0;
    options.profile.pMemRecurrence = 1.0;
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) / "ims_fuzz_repro")
            .string();
    options.reproDir = dir;

    const auto report = fuzz::runCampaign(options);
    ASSERT_FALSE(report.findings.empty())
        << "the injected delay fault produced no oracle finding";

    const auto mismatch = std::find_if(
        report.findings.begin(), report.findings.end(),
        [](const fuzz::CampaignFinding& f) {
            return f.code == "sim.mismatch";
        });
    ASSERT_NE(mismatch, report.findings.end())
        << "expected a sim.mismatch finding, got only "
        << report.findings.front().code;

    // The minimizer made the case smaller (or at worst kept it) while
    // preserving the failure code, and wrote a standalone reproducer.
    EXPECT_LE(mismatch->minimizedOps, mismatch->ops);
    ASSERT_FALSE(mismatch->reproFile.empty());
    ASSERT_TRUE(std::filesystem::exists(mismatch->reproFile));

    const fuzz::ReproducerCase repro =
        fuzz::parseReproducer(fuzz::readTextFile(mismatch->reproFile));
    EXPECT_EQ(repro.code, "sim.mismatch");

    // Replaying the standalone reproducer (parse the embedded machine
    // and loop, re-run the oracles) reproduces the same failure while
    // the fault is live...
    const auto machine = machine::parseMachine(repro.machineText);
    const ir::Loop loop = ir::parseLoop(repro.loopText);
    fuzz::OracleOptions oracle;
    oracle.simSeed = repro.simSeed;
    const auto replayed = fuzz::runOracles(
        loop, machine, core::PipelinerOptions{}, oracle);
    EXPECT_EQ(replayed.code, repro.code) << replayed.message;

    // ... and is clean once the fault is fixed (disabled).
    graph::setDelayFaultForTesting(false);
    const auto fixed = fuzz::runOracles(loop, machine,
                                        core::PipelinerOptions{}, oracle);
    EXPECT_FALSE(fixed.failed()) << fixed.code << ": " << fixed.message;
}

TEST(Minimizer, ReturnsCleanInputUnchanged)
{
    const auto workload = workloads::kernelByName("daxpy");
    const auto machine = machine::cydra5();
    const fuzz::OracleOptions oracle;
    const auto result = fuzz::minimize(workload.loop, machine,
                                       core::PipelinerOptions{}, oracle);
    EXPECT_TRUE(result.code.empty());
    EXPECT_EQ(result.minimizedOps, workload.loop.size());
}

} // namespace
} // namespace ims
