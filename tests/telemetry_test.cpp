#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "core/pipeliner.hpp"
#include "machine/cydra5.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "support/telemetry.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;

core::PipelineResult
pipelineKernel(const std::string& name)
{
    core::SoftwarePipeliner pipeliner(machine::cydra5());
    const auto w = workloads::kernelByName(name);
    return pipeliner.pipeline(core::PipelineRequest(w.loop));
}

TEST(TelemetryTest, PhaseNamesRoundTrip)
{
    for (int i = 0; i < support::kNumPhases; ++i) {
        const auto phase = static_cast<support::Phase>(i);
        const auto back = support::phaseByName(support::phaseName(phase));
        ASSERT_TRUE(back.has_value()) << support::phaseName(phase);
        EXPECT_EQ(*back, phase);
    }
    EXPECT_FALSE(support::phaseByName("no_such_phase").has_value());
}

TEST(TelemetryTest, EveryPhaseReportedForAPipelinedLoop)
{
    const auto result = pipelineKernel("daxpy");
    ASSERT_TRUE(result.ok());
    const auto& t = result.telemetry;

    for (const auto phase :
         {support::Phase::kGraphBuild, support::Phase::kMiiBounds,
          support::Phase::kIiAttempt, support::Phase::kListSchedule,
          support::Phase::kCodegen, support::Phase::kLifetimes,
          support::Phase::kRegAlloc, support::Phase::kVerify}) {
        EXPECT_GE(t.phaseCalls(phase), 1) << support::phaseName(phase);
        EXPECT_GE(t.phaseSeconds(phase), 0.0);
    }

    // One II-attempt sample per candidate II; exactly the last succeeds.
    int attempt_samples = 0;
    int successful_attempts = 0;
    int last_detail = -1;
    for (const auto& sample : t.phases) {
        if (sample.phase != support::Phase::kIiAttempt)
            continue;
        ++attempt_samples;
        if (sample.succeeded) {
            ++successful_attempts;
            last_detail = sample.detail;
        }
    }
    EXPECT_EQ(attempt_samples, t.attempts);
    EXPECT_EQ(successful_attempts, 1);
    EXPECT_EQ(last_detail, t.ii);

    EXPECT_TRUE(t.succeeded);
    EXPECT_EQ(t.loop, "daxpy");
    EXPECT_GT(t.ops, 0);
    EXPECT_GE(t.ii, t.mii);
    EXPECT_GE(t.mii, t.resMii);
    EXPECT_GT(t.budget, 0);
    EXPECT_GT(t.stepsTotal, 0);
    EXPECT_GT(t.wallSeconds, 0.0);
    EXPECT_GT(t.counters.scheduleSteps, 0u);
    EXPECT_GT(t.counters.findTimeSlotProbes, 0u);
}

TEST(TelemetryTest, EveryPhaseAppearsInJson)
{
    const auto result = pipelineKernel("daxpy");
    const std::string json = result.telemetry.toJson();
    for (int i = 0; i < support::kNumPhases; ++i) {
        const auto phase = static_cast<support::Phase>(i);
        EXPECT_NE(json.find(std::string("\"") +
                            support::phaseName(phase) + "\""),
                  std::string::npos)
            << support::phaseName(phase);
    }
}

TEST(TelemetryTest, JsonRoundTripPreservesCountersAndSummary)
{
    const auto result = pipelineKernel("tridiag");
    ASSERT_TRUE(result.ok());
    const auto& original = result.telemetry;

    const auto reparsed = support::parseTelemetryJson(original.toJson());

    EXPECT_EQ(reparsed.loop, original.loop);
    EXPECT_EQ(reparsed.ops, original.ops);
    EXPECT_EQ(reparsed.succeeded, original.succeeded);
    EXPECT_EQ(reparsed.resMii, original.resMii);
    EXPECT_EQ(reparsed.mii, original.mii);
    EXPECT_EQ(reparsed.ii, original.ii);
    EXPECT_EQ(reparsed.attempts, original.attempts);
    EXPECT_EQ(reparsed.scheduleLength, original.scheduleLength);
    EXPECT_EQ(reparsed.budget, original.budget);
    EXPECT_EQ(reparsed.stepsTotal, original.stepsTotal);
    EXPECT_EQ(reparsed.backtracks, original.backtracks);
    EXPECT_DOUBLE_EQ(reparsed.wallSeconds, original.wallSeconds);

    // Counters: every field must survive the round trip exactly.
    EXPECT_EQ(reparsed.counters.sccEdgeVisits,
              original.counters.sccEdgeVisits);
    EXPECT_EQ(reparsed.counters.resMiiInspections,
              original.counters.resMiiInspections);
    EXPECT_EQ(reparsed.counters.minDistInnerSteps,
              original.counters.minDistInnerSteps);
    EXPECT_EQ(reparsed.counters.minDistInvocations,
              original.counters.minDistInvocations);
    EXPECT_EQ(reparsed.counters.heightRInnerSteps,
              original.counters.heightRInnerSteps);
    EXPECT_EQ(reparsed.counters.estartPredecessorVisits,
              original.counters.estartPredecessorVisits);
    EXPECT_EQ(reparsed.counters.findTimeSlotProbes,
              original.counters.findTimeSlotProbes);
    EXPECT_EQ(reparsed.counters.scheduleSteps,
              original.counters.scheduleSteps);
    EXPECT_EQ(reparsed.counters.unscheduleSteps,
              original.counters.unscheduleSteps);

    ASSERT_EQ(reparsed.phases.size(), original.phases.size());
    for (std::size_t i = 0; i < original.phases.size(); ++i) {
        EXPECT_EQ(reparsed.phases[i].phase, original.phases[i].phase);
        EXPECT_EQ(reparsed.phases[i].detail, original.phases[i].detail);
        EXPECT_DOUBLE_EQ(reparsed.phases[i].seconds,
                         original.phases[i].seconds);
        EXPECT_EQ(reparsed.phases[i].succeeded,
                  original.phases[i].succeeded);
    }
}

TEST(TelemetryTest, NonFiniteDoublesProduceValidJson)
{
    // A crashed phase timer or a degenerate summary must never leak a
    // bare `nan`/`inf` token into the JSON stream (neither is a JSON
    // literal): NaN becomes null, infinities clamp to the largest
    // finite double of the same sign, and the result stays parseable.
    auto result = pipelineKernel("daxpy");
    ASSERT_TRUE(result.ok());
    auto telemetry = result.telemetry;
    telemetry.wallSeconds = std::numeric_limits<double>::quiet_NaN();
    ASSERT_FALSE(telemetry.phases.empty());
    telemetry.phases[0].seconds = std::numeric_limits<double>::infinity();

    const std::string json = telemetry.toJson();
    // Bare non-finite tokens appear right after a ':' separator; field
    // names like "...proven_infeasible" legitimately contain "inf".
    EXPECT_EQ(json.find(":nan"), std::string::npos) << json;
    EXPECT_EQ(json.find(":inf"), std::string::npos) << json;
    EXPECT_EQ(json.find(":-inf"), std::string::npos) << json;

    const auto reparsed = support::parseTelemetryJson(json);
    EXPECT_TRUE(std::isnan(reparsed.wallSeconds));
    EXPECT_EQ(reparsed.phases[0].seconds,
              std::numeric_limits<double>::max());
}

TEST(TelemetryTest, ParserRejectsMalformedInput)
{
    EXPECT_THROW(support::parseTelemetryJson(""), support::Error);
    EXPECT_THROW(support::parseTelemetryJson("{"), support::Error);
    EXPECT_THROW(support::parseTelemetryJson("{\"loop\":}"),
                 support::Error);
    EXPECT_THROW(support::parseTelemetryJson(
                     "{\"schema\":\"ims.telemetry.v99\"}"),
                 support::Error);
    // Unknown keys are skipped for forward compatibility.
    const auto t = support::parseTelemetryJson(
        "{\"schema\":\"ims.telemetry.v1\",\"future_field\":[1,{\"a\":2}],"
        "\"loop\":\"x\",\"ii\":3}");
    EXPECT_EQ(t.loop, "x");
    EXPECT_EQ(t.ii, 3);
}

TEST(TelemetryTest, ExternalSinkSeesTheSameStream)
{
    support::TelemetryRecorder external;
    core::SoftwarePipeliner pipeliner(machine::cydra5());
    const auto w = workloads::kernelByName("daxpy");
    const auto result = pipeliner.pipeline(
        core::PipelineRequest(w.loop).withTelemetry(&external));
    ASSERT_TRUE(result.ok());

    EXPECT_EQ(external.record().phases.size(),
              result.telemetry.phases.size());
    EXPECT_EQ(external.record().counters.scheduleSteps,
              result.telemetry.counters.scheduleSteps);
    EXPECT_EQ(external.record().counters.findTimeSlotProbes,
              result.telemetry.counters.findTimeSlotProbes);
}

TEST(TelemetryTest, OptionsLevelSinkReceivesEvents)
{
    support::TelemetryRecorder external;
    core::SoftwarePipeliner pipeliner(
        machine::cydra5(),
        core::PipelinerOptions{}.withTelemetry(&external));
    const auto w = workloads::kernelByName("daxpy");
    const auto result = pipeliner.pipeline(core::PipelineRequest(w.loop));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(external.record().phases.size(),
              result.telemetry.phases.size());
}

TEST(TelemetryTest, TableRendersOneRowPerRecord)
{
    const auto a = pipelineKernel("daxpy");
    const auto b = pipelineKernel("tridiag");
    const auto table =
        support::telemetryTable({a.telemetry, b.telemetry});
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("daxpy"), std::string::npos);
    EXPECT_NE(text.find("tridiag"), std::string::npos);
    EXPECT_NE(text.find("MII"), std::string::npos);
}

// Counters must be a pure function of the request: two runs of the same
// request through the request/result API (the only entry point now that the
// deprecated Counters* shim is gone) report identical counter totals.
TEST(TelemetryTest, RepeatedRequestsReportIdenticalCounters)
{
    const auto w = workloads::kernelByName("state_frag");
    core::SoftwarePipeliner pipeliner(machine::cydra5());

    const auto first = pipeliner.pipeline(core::PipelineRequest(w.loop));
    const auto second = pipeliner.pipeline(core::PipelineRequest(w.loop));
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());

    EXPECT_EQ(first.telemetry.counters.scheduleSteps,
              second.telemetry.counters.scheduleSteps);
    EXPECT_EQ(first.telemetry.counters.unscheduleSteps,
              second.telemetry.counters.unscheduleSteps);
    EXPECT_EQ(first.telemetry.counters.findTimeSlotProbes,
              second.telemetry.counters.findTimeSlotProbes);
    EXPECT_EQ(first.telemetry.counters.minDistInnerSteps,
              second.telemetry.counters.minDistInnerSteps);
    EXPECT_GT(first.telemetry.counters.scheduleSteps, 0u);
}

} // namespace
