#include <gtest/gtest.h>

#include "ir/loop.hpp"
#include "ir/loop_builder.hpp"
#include "ir/opcode.hpp"
#include "support/error.hpp"

namespace {

using namespace ims;
using ir::Opcode;

TEST(OpcodeTest, NamesRoundTrip)
{
    for (int k = 0; k < ir::kNumRealOpcodes; ++k) {
        const auto opcode = static_cast<Opcode>(k);
        const auto parsed = ir::opcodeFromName(ir::opcodeName(opcode));
        ASSERT_TRUE(parsed.has_value()) << ir::opcodeName(opcode);
        EXPECT_EQ(*parsed, opcode);
    }
}

TEST(OpcodeTest, UnknownNameReturnsNullopt)
{
    EXPECT_FALSE(ir::opcodeFromName("frobnicate").has_value());
}

TEST(OpcodeTest, Classification)
{
    EXPECT_TRUE(ir::isPseudo(Opcode::kStart));
    EXPECT_TRUE(ir::isPseudo(Opcode::kStop));
    EXPECT_FALSE(ir::isPseudo(Opcode::kAdd));
    EXPECT_TRUE(ir::accessesMemory(Opcode::kLoad));
    EXPECT_TRUE(ir::accessesMemory(Opcode::kStore));
    EXPECT_FALSE(ir::accessesMemory(Opcode::kMul));
    EXPECT_TRUE(ir::definesRegister(Opcode::kLoad));
    EXPECT_FALSE(ir::definesRegister(Opcode::kStore));
    EXPECT_FALSE(ir::definesRegister(Opcode::kBranch));
    EXPECT_TRUE(ir::definesPredicate(Opcode::kPredSet));
    EXPECT_FALSE(ir::definesPredicate(Opcode::kCmpGt));
}

TEST(OpcodeTest, SourceCounts)
{
    EXPECT_EQ(ir::sourceCount(Opcode::kLoad), 1);
    EXPECT_EQ(ir::sourceCount(Opcode::kStore), 2);
    EXPECT_EQ(ir::sourceCount(Opcode::kSelect), 3);
    EXPECT_EQ(ir::sourceCount(Opcode::kAbs), 1);
    EXPECT_EQ(ir::sourceCount(Opcode::kPredClear), 0);
    EXPECT_EQ(ir::sourceCount(Opcode::kBranch), 1);
}

TEST(LoopBuilderTest, BuildsValidDaxpyShapedLoop)
{
    ir::LoopBuilder b("t");
    b.liveIn("a");
    b.recurrence("ax");
    b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 3), b.imm(24)});
    b.load("x", "X", 0, b.reg("ax"));
    b.op(Opcode::kMul, "t", {b.reg("a"), b.reg("x")});
    b.store("Y", 0, b.reg("ax"), b.reg("t"));
    b.closeLoopBackSubstituted();
    const ir::Loop loop = b.build();

    EXPECT_EQ(loop.size(), 6);
    EXPECT_EQ(loop.numArrays(), 2);
    EXPECT_EQ(loop.maxDistance(), 3);
    // Defs resolve.
    for (const auto& op : loop.operations()) {
        if (op.hasDest())
            EXPECT_EQ(loop.definingOp(op.dest), op.id);
    }
}

TEST(LoopBuilderTest, ReadOfUndeclaredRegisterThrows)
{
    ir::LoopBuilder b("t");
    EXPECT_THROW(b.reg("nope"), support::Error);
}

TEST(LoopBuilderTest, DoubleDefinitionThrows)
{
    ir::LoopBuilder b("t");
    b.liveIn("a");
    b.op(Opcode::kCopy, "x", {b.reg("a")});
    EXPECT_THROW(b.op(Opcode::kCopy, "x", {b.reg("a")}),
                 support::Error);
}

TEST(LoopValidateTest, OperandArityMismatch)
{
    ir::Loop loop("t");
    const ir::RegId a = loop.addRegister({"a", false, true});
    const ir::RegId d = loop.addRegister({"d", false, false});
    ir::Operation op;
    op.opcode = Opcode::kAdd;
    op.dest = d;
    op.sources = {ir::Operand::makeReg(a)}; // needs two
    loop.addOperation(op);
    EXPECT_THROW(loop.validate(), support::Error);
}

TEST(LoopValidateTest, CrossIterationReadWithoutSeedThrows)
{
    ir::Loop loop("t");
    const ir::RegId x = loop.addRegister({"x", false, false}); // not live-in
    ir::Operation def;
    def.opcode = Opcode::kCopy;
    def.dest = x;
    def.sources = {ir::Operand::makeReg(x, 1)};
    loop.addOperation(def);
    EXPECT_THROW(loop.validate(), support::Error);
}

TEST(LoopValidateTest, GuardMustBePredicate)
{
    ir::Loop loop("t");
    const ir::RegId d = loop.addRegister({"d", false, true}); // data reg
    const ir::RegId y = loop.addRegister({"y", false, false});
    ir::Operation op;
    op.opcode = Opcode::kCopy;
    op.dest = y;
    op.sources = {ir::Operand::makeReg(d)};
    op.guard = ir::Operand::makeReg(d);
    loop.addOperation(op);
    EXPECT_THROW(loop.validate(), support::Error);
}

TEST(LoopValidateTest, MemoryOpNeedsMemRef)
{
    ir::Loop loop("t");
    const ir::RegId a = loop.addRegister({"a", false, true});
    const ir::RegId d = loop.addRegister({"d", false, false});
    ir::Operation op;
    op.opcode = Opcode::kLoad;
    op.dest = d;
    op.sources = {ir::Operand::makeReg(a)};
    // no memRef
    loop.addOperation(op);
    EXPECT_THROW(loop.validate(), support::Error);
}

TEST(LoopValidateTest, PseudoOpcodeRejected)
{
    ir::Loop loop("t");
    ir::Operation op;
    op.opcode = Opcode::kStart;
    loop.addOperation(op);
    EXPECT_THROW(loop.validate(), support::Error);
}

TEST(LoopValidateTest, NonPositiveStrideRejected)
{
    ir::Loop loop("t");
    const ir::ArrayId arr = loop.addArray({"A"});
    const ir::RegId a = loop.addRegister({"a", false, true});
    const ir::RegId d = loop.addRegister({"d", false, false});
    ir::Operation op;
    op.opcode = Opcode::kLoad;
    op.dest = d;
    op.sources = {ir::Operand::makeReg(a)};
    op.memRef = ir::MemRef{arr, 0, 0};
    loop.addOperation(op);
    EXPECT_THROW(loop.validate(), support::Error);
}

TEST(LoopPrintTest, OperationToStringShowsDistanceAndMemRef)
{
    ir::LoopBuilder b("t");
    b.recurrence("s");
    b.recurrence("ax");
    b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 3), b.imm(24)});
    b.load("x", "X", 1, b.reg("ax"));
    b.op(Opcode::kAdd, "s", {b.reg("s", 4), b.reg("x")});
    b.closeLoopBackSubstituted();
    const ir::Loop loop = b.build();

    const std::string text = loop.toString();
    EXPECT_NE(text.find("s[4]"), std::string::npos);
    EXPECT_NE(text.find("@ X[i+1]"), std::string::npos);
    EXPECT_NE(text.find("ax[3]"), std::string::npos);
}

TEST(LoopPrintTest, StridePrinted)
{
    ir::LoopBuilder b("t");
    b.recurrence("ax");
    b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 3), b.imm(24)});
    b.load("x", "X", 1, b.reg("ax"), "", 2);
    b.store("Y", 0, b.reg("ax"), b.reg("x"));
    b.closeLoopBackSubstituted();
    const ir::Loop loop = b.build();
    EXPECT_NE(loop.toString().find("@ X[2*i+1]"), std::string::npos);
}

TEST(LoopTest, MaxDistanceIncludesGuards)
{
    ir::LoopBuilder b("t");
    b.liveIn("p", true);
    b.recurrence("ax");
    b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 3), b.imm(24)});
    b.storeIf("Y", 0, b.reg("ax"), b.imm(1.0), b.reg("p", 5));
    b.closeLoopBackSubstituted();
    const ir::Loop loop = b.build();
    EXPECT_EQ(loop.maxDistance(), 5);
}

} // namespace
