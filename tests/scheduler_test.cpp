#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "graph/graph_builder.hpp"
#include "graph/scc.hpp"
#include "machine/cydra5.hpp"
#include "machine/machines.hpp"
#include "mii/mii.hpp"
#include "sched/attempt_feedback.hpp"
#include "sched/iterative_scheduler.hpp"
#include "sched/schedule.hpp"
#include "sched/slack_scheduler.hpp"
#include "sched/verifier.hpp"
#include "support/error.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;

struct Context
{
    ir::Loop loop;
    machine::MachineModel machine;
    graph::DepGraph graph;
    graph::SccResult sccs;
    mii::MiiResult mii;

    explicit Context(const std::string& kernel,
                     machine::MachineModel m = machine::cydra5())
        : loop(workloads::kernelByName(kernel).loop),
          machine(std::move(m)),
          graph(graph::buildDepGraph(loop, machine)),
          sccs(graph::findSccs(graph)),
          mii(mii::computeMii(loop, machine, graph, sccs))
    {
    }
};

TEST(IterativeSchedulerTest, SchedulesDaxpyAtMii)
{
    Context ctx("daxpy");
    sched::IterativeScheduler scheduler(ctx.loop, ctx.machine, ctx.graph,
                                        ctx.sccs);
    const auto result = scheduler.trySchedule(ctx.mii.mii, 1000);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->ii, ctx.mii.mii);
    EXPECT_TRUE(
        sched::verifySchedule(ctx.loop, ctx.machine, ctx.graph, *result)
            .empty());
}

TEST(IterativeSchedulerTest, FailsBelowRecMii)
{
    Context ctx("first_order_rec"); // MII = 9 from the recurrence
    sched::IterativeScheduler scheduler(ctx.loop, ctx.machine, ctx.graph,
                                        ctx.sccs);
    // At II = MII - 1 the HeightR computation must detect the positive
    // cycle (II below RecMII is structurally impossible).
    EXPECT_THROW(scheduler.trySchedule(ctx.mii.mii - 1, 1000),
                 support::Error);
}

TEST(IterativeSchedulerTest, TinyBudgetFails)
{
    Context ctx("fat_loop");
    sched::IterativeScheduler scheduler(ctx.loop, ctx.machine, ctx.graph,
                                        ctx.sccs);
    EXPECT_FALSE(scheduler.trySchedule(ctx.mii.mii, 3).has_value());
}

TEST(IterativeSchedulerTest, BudgetExhaustionRecoversAtLargerIi)
{
    Context ctx("div_kernel");
    sched::ScheduleOptions options;
    options.search.budgetRatio = 2.0;
    const auto outcome = sched::schedule(ctx.loop, ctx.machine, ctx.graph,
                                         ctx.sccs, options);
    EXPECT_GE(outcome.schedule.ii, outcome.mii);
    EXPECT_TRUE(sched::verifySchedule(ctx.loop, ctx.machine, ctx.graph,
                                      outcome.schedule)
                    .empty());
}

TEST(IterativeSchedulerTest, StepsAndUnschedulesReported)
{
    Context ctx("daxpy");
    sched::IterativeScheduler scheduler(ctx.loop, ctx.machine, ctx.graph,
                                        ctx.sccs);
    const auto result = scheduler.trySchedule(ctx.mii.mii, 1000);
    ASSERT_TRUE(result.has_value());
    // At minimum every op plus START and STOP is scheduled once.
    EXPECT_GE(result->stepsUsed, ctx.loop.size() + 2);
    EXPECT_GE(result->unschedules, 0);
}

TEST(IterativeSchedulerTest, ScheduleLengthCoversEveryCompletion)
{
    Context ctx("hydro_frag");
    sched::IterativeScheduler scheduler(ctx.loop, ctx.machine, ctx.graph,
                                        ctx.sccs);
    const auto result = scheduler.trySchedule(ctx.mii.mii, 1000);
    ASSERT_TRUE(result.has_value());
    int max_completion = 0;
    for (int op = 0; op < ctx.loop.size(); ++op) {
        max_completion = std::max(
            max_completion,
            result->times[op] +
                ctx.machine.latency(ctx.loop.operation(op).opcode));
    }
    // STOP's schedule time is at least every op's completion; when the
    // final STOP placement happened with all ops in place it is exact.
    EXPECT_GE(result->scheduleLength, max_completion);
}

TEST(ModuloSchedulerTest, AllKernelsScheduleAndVerify)
{
    const auto machine = machine::cydra5();
    for (const auto& w : workloads::kernelLibrary()) {
        const auto graph = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(graph);
        const auto outcome = sched::schedule(w.loop, machine, graph, sccs);
        EXPECT_GE(outcome.schedule.ii, outcome.mii) << w.loop.name();
        const auto violations = sched::verifySchedule(
            w.loop, machine, graph, outcome.schedule);
        EXPECT_TRUE(violations.empty())
            << w.loop.name() << ": " << violations.front().toString();
    }
}

TEST(ModuloSchedulerTest, BudgetRatioSixMatchesPaperQualitySetup)
{
    // The paper's quality experiments use BudgetRatio 6; all kernels must
    // reach II = MII with it.
    const auto machine = machine::cydra5();
    sched::ScheduleOptions options;
    options.search.budgetRatio = 6.0;
    for (const auto& w : workloads::kernelLibrary()) {
        const auto graph = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(graph);
        const auto outcome =
            sched::schedule(w.loop, machine, graph, sccs, options);
        EXPECT_EQ(outcome.schedule.ii, outcome.mii) << w.loop.name();
    }
}

TEST(ModuloSchedulerTest, InvalidBudgetRatioRejected)
{
    Context ctx("daxpy");
    sched::ScheduleOptions options;
    options.search.budgetRatio = 0.0;
    EXPECT_THROW(sched::schedule(ctx.loop, ctx.machine, ctx.graph,
                                 ctx.sccs, options),
                 support::Error);
}

TEST(ModuloSchedulerTest, AttemptsCountsCandidateIis)
{
    Context ctx("daxpy");
    const auto outcome =
        sched::schedule(ctx.loop, ctx.machine, ctx.graph, ctx.sccs);
    EXPECT_EQ(outcome.attempts, outcome.schedule.ii - outcome.mii + 1);
}

TEST(ModuloSchedulerTest, PriorityAblationStillProducesLegalSchedules)
{
    const auto machine = machine::cydra5();
    for (const auto scheme :
         {sched::PriorityScheme::kHeightR, sched::PriorityScheme::kSlack,
          sched::PriorityScheme::kSourceOrder,
          sched::PriorityScheme::kRandom}) {
        const auto w = workloads::kernelByName("state_frag");
        const auto graph = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(graph);
        sched::ScheduleOptions options;
        options.priority = scheme;
        // Weak priority functions displace far more (that is the point of
        // the ablation); give them the paper's quality budget.
        options.search.budgetRatio = 6.0;
        const auto outcome =
            sched::schedule(w.loop, machine, graph, sccs, options);
        EXPECT_TRUE(sched::verifySchedule(w.loop, machine, graph,
                                          outcome.schedule)
                        .empty())
            << sched::prioritySchemeName(scheme);
    }
}

TEST(ModuloSchedulerTest, ForwardProgressAblationTerminatesViaBudget)
{
    // Without the forward-progress rule the scheduler may livelock inside
    // one II attempt, but the budget still bounds it and a larger II
    // eventually succeeds.
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("div_kernel");
    const auto graph = graph::buildDepGraph(w.loop, machine);
    const auto sccs = graph::findSccs(graph);
    sched::ScheduleOptions options;
    options.forwardProgressRule = false;
    const auto outcome =
        sched::schedule(w.loop, machine, graph, sccs, options);
    EXPECT_TRUE(sched::verifySchedule(w.loop, machine, graph,
                                      outcome.schedule)
                    .empty());
}

TEST(ModuloSchedulerTest, UnscheduleCountsNoWorseThanSeed)
{
    // Regression guard for the forced-placement displacement rule: the
    // scheduler evicts only the operations holding the *chosen*
    // alternative's resources, so with default production options no
    // kernel may displace more than the pre-fix seed did (captured in
    // bench/data/sched_identity_seed.json; every kernel not listed here
    // was displacement-free).
    const std::map<std::string, std::int64_t> seed_unschedules = {
        {"first_order_rec", 1}, {"argmax_like", 1},      {"horner_rec", 1},
        {"second_order_rec", 2}, {"lfk20_ordinates", 3},
    };
    const auto machine = machine::cydra5();
    for (const auto& w : workloads::kernelLibrary()) {
        const auto graph = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(graph);
        const auto outcome = sched::schedule(w.loop, machine, graph, sccs);
        const auto it = seed_unschedules.find(w.loop.name());
        const std::int64_t allowed =
            it == seed_unschedules.end() ? 0 : it->second;
        EXPECT_LE(outcome.totalUnschedules, allowed) << w.loop.name();
    }
}

TEST(TraceTest, TraceRecordsEveryStepInOrder)
{
    Context ctx("daxpy");
    std::vector<sched::TraceEvent> trace;
    sched::IterativeScheduleOptions options;
    options.trace = &trace;
    sched::IterativeScheduler scheduler(ctx.loop, ctx.machine, ctx.graph,
                                        ctx.sccs, options);
    const auto result = scheduler.trySchedule(ctx.mii.mii, 1000);
    ASSERT_TRUE(result.has_value());
    // One event per scheduling step except START's implicit placement.
    EXPECT_EQ(static_cast<std::int64_t>(trace.size()) + 1,
              result->stepsUsed);
    int prev_step = 0;
    for (const auto& event : trace) {
        EXPECT_GT(event.step, prev_step);
        prev_step = event.step;
        EXPECT_GE(event.slot, event.estart);
        EXPECT_EQ(event.maxTime, event.minTime + ctx.mii.mii - 1);
        if (!event.forced)
            EXPECT_LE(event.slot, event.maxTime);
    }
}

TEST(TraceTest, ForcedPlacementsRecordDisplacements)
{
    // A recurrence-tight loop at II = MII needs displacement (the
    // divide's blocked stage collides with the recurrence window).
    Context ctx("lfk20_ordinates");
    std::vector<sched::TraceEvent> trace;
    sched::IterativeScheduleOptions options;
    options.trace = &trace;
    sched::IterativeScheduler scheduler(ctx.loop, ctx.machine, ctx.graph,
                                        ctx.sccs, options);
    scheduler.trySchedule(ctx.mii.mii, 6 * (ctx.loop.size() + 2));
    bool any_displacement = false;
    for (const auto& event : trace)
        any_displacement = any_displacement || !event.displaced.empty();
    EXPECT_TRUE(any_displacement);
}

TEST(VerifierTest, DetectsDependenceViolation)
{
    Context ctx("daxpy");
    sched::IterativeScheduler scheduler(ctx.loop, ctx.machine, ctx.graph,
                                        ctx.sccs);
    auto result = scheduler.trySchedule(ctx.mii.mii, 1000);
    ASSERT_TRUE(result.has_value());
    // Corrupt: move the store (a consumer) to time 0.
    for (int op = 0; op < ctx.loop.size(); ++op) {
        if (ctx.loop.operation(op).isStore())
            result->times[op] = 0;
    }
    EXPECT_FALSE(
        sched::verifySchedule(ctx.loop, ctx.machine, ctx.graph, *result)
            .empty());
}

TEST(VerifierTest, DetectsResourceConflict)
{
    Context ctx("multi_array");
    sched::IterativeScheduler scheduler(ctx.loop, ctx.machine, ctx.graph,
                                        ctx.sccs);
    auto result = scheduler.trySchedule(ctx.mii.mii, 1000);
    ASSERT_TRUE(result.has_value());
    // Force every load onto alternative 0: the memory port double-books.
    int loads = 0;
    for (int op = 0; op < ctx.loop.size(); ++op) {
        if (ctx.loop.operation(op).isLoad()) {
            result->alternatives[op] = 0;
            result->times[op] = 0;
            ++loads;
        }
    }
    ASSERT_GE(loads, 2);
    EXPECT_FALSE(
        sched::verifySchedule(ctx.loop, ctx.machine, ctx.graph, *result)
            .empty());
}

TEST(VerifierTest, DetectsBadAlternativeIndex)
{
    Context ctx("daxpy");
    sched::IterativeScheduler scheduler(ctx.loop, ctx.machine, ctx.graph,
                                        ctx.sccs);
    auto result = scheduler.trySchedule(ctx.mii.mii, 1000);
    ASSERT_TRUE(result.has_value());
    result->alternatives[0] = 99;
    EXPECT_FALSE(
        sched::verifySchedule(ctx.loop, ctx.machine, ctx.graph, *result)
            .empty());
}

TEST(ScheduleApiTest, BackendsDispatchThroughSchedule)
{
    // Both heuristic backends run under the one schedule() entry point
    // (the deprecated per-backend free functions are gone) and must tag
    // their outcomes with the backend that actually ran.
    Context ctx("daxpy");
    sched::ScheduleOptions options;
    options.search.budgetRatio = 6.0;
    const auto iter =
        sched::schedule(ctx.loop, ctx.machine, ctx.graph, ctx.sccs, options);
    options = sched::ScheduleOptions{}.withStrategy(
        sched::SchedulerStrategy::kSlack);
    const auto slack =
        sched::schedule(ctx.loop, ctx.machine, ctx.graph, ctx.sccs, options);
    EXPECT_EQ(iter.scheduler, "iterative");
    EXPECT_EQ(slack.scheduler, "slack");
    EXPECT_GE(iter.schedule.ii, iter.mii);
    EXPECT_GE(slack.schedule.ii, slack.mii);
    EXPECT_FALSE(iter.schedule.times.empty());
    EXPECT_FALSE(slack.schedule.times.empty());
}

TEST(ScheduleApiTest, StrategyNamesRoundTrip)
{
    for (const auto strategy : {sched::SchedulerStrategy::kIterative,
                                sched::SchedulerStrategy::kSlack,
                                sched::SchedulerStrategy::kExact}) {
        const auto name = sched::schedulerStrategyName(strategy);
        const auto parsed = sched::schedulerStrategyByName(name);
        ASSERT_TRUE(parsed.has_value()) << name;
        EXPECT_EQ(*parsed, strategy) << name;
    }
    EXPECT_FALSE(sched::schedulerStrategyByName("nonsense").has_value());
}

TEST(VerifierTest, DetectsBadIi)
{
    Context ctx("daxpy");
    sched::ScheduleResult bogus;
    bogus.ii = 0;
    EXPECT_FALSE(
        sched::verifySchedule(ctx.loop, ctx.machine, ctx.graph, bogus)
            .empty());
}

} // namespace
