#include <gtest/gtest.h>

#include <set>

#include "frontend/region_builder.hpp"
#include "machine/cydra5.hpp"
#include "program/program.hpp"
#include "program/program_compiler.hpp"
#include "program/program_executor.hpp"
#include "support/error.hpp"
#include "workloads/kernels.hpp"
#include "workloads/programs.hpp"

namespace {

using namespace ims;
using program::Block;
using program::CompiledProgram;
using program::Program;
using program::ProgramCompiler;
using program::ProgramOptions;
using program::ProgramSpec;
using program::ProgramState;
using program::c;
using program::v;

const std::vector<int> kTrips = {0, 1, 2, 5, 17};

Program
smallProgram()
{
    Program p("unit.daxpy", workloads::kernelByName("daxpy").loop);
    Block setup("setup");
    setup.assign(ir::Opcode::kMul, "a", {v("alpha"), c(2.0)});
    p.preBlocks.push_back(std::move(setup));
    p.loop.outputs["s.last"] = "s";
    p.loop.itersVar = "iters";
    Block tail("tail");
    tail.store("R", 0, v("s.last"));
    p.postBlocks.push_back(std::move(tail));
    return p;
}

// ---------------------------------------------------------------------
// Program IR structure
// ---------------------------------------------------------------------

TEST(ProgramIrTest, ValidatesCleanProgram)
{
    EXPECT_NO_THROW(smallProgram().validate());
}

TEST(ProgramIrTest, RejectsControlVariableNames)
{
    Program p = smallProgram();
    p.preBlocks[0].assign(ir::Opcode::kAdd, "$lc", {c(1.0), c(2.0)});
    EXPECT_THROW(p.validate(), support::Error);
}

TEST(ProgramIrTest, RejectsTripVariableAssignment)
{
    Program p = smallProgram();
    p.preBlocks[0].assign(ir::Opcode::kAdd, p.loop.tripVar, {c(1.0)});
    EXPECT_THROW(p.validate(), support::Error);
}

TEST(ProgramIrTest, RejectsOutputsOnWhileLoops)
{
    Program p("unit.while", workloads::kernelByName("search_sum").loop);
    p.loop.outputs["sum"] = "s";
    EXPECT_THROW(p.validate(), support::Error);
}

TEST(ProgramIrTest, InputVariablesIncludeConditionalOutputs)
{
    const Program p = smallProgram();
    const auto inputs = p.inputVariables();
    // "alpha" feeds the pre-block; "s.last" is read by the post block but
    // only written when trip >= 1, so the initial state must supply it.
    EXPECT_NE(std::find(inputs.begin(), inputs.end(), "alpha"),
              inputs.end());
    EXPECT_NE(std::find(inputs.begin(), inputs.end(), "s.last"),
              inputs.end());
    EXPECT_EQ(std::find(inputs.begin(), inputs.end(), p.loop.tripVar),
              inputs.end());
}

TEST(ProgramIrTest, CorpusListsAndResolvesByName)
{
    const auto corpus = workloads::programLibrary();
    EXPECT_GE(corpus.size(), 12u);
    std::set<std::string> names;
    for (const auto& entry : corpus) {
        EXPECT_NO_THROW(entry.program.validate());
        EXPECT_TRUE(names.insert(entry.program.name).second)
            << "duplicate corpus name " << entry.program.name;
    }
    EXPECT_EQ(workloads::programByName("prog.daxpy").name, "prog.daxpy");
    EXPECT_THROW(workloads::programByName("prog.nope"), support::Error);
}

// ---------------------------------------------------------------------
// Straight-line block compilation
// ---------------------------------------------------------------------

TEST(CompileBlockTest, SchedulesRespectDependences)
{
    Block b("deps");
    b.assign(ir::Opcode::kMul, "t", {v("x"), v("x")});
    b.assign(ir::Opcode::kAdd, "u", {v("t"), c(1.0)});
    b.store("R", 0, v("u"));
    const auto compiled =
        program::compileBlock(b, machine::cydra5());
    ASSERT_EQ(compiled.times.size(), 3u);
    const auto& machine = machine::cydra5();
    EXPECT_GE(compiled.times[1],
              compiled.times[0]
                  + machine.latency(ir::Opcode::kMul));
    EXPECT_GE(compiled.times[2],
              compiled.times[1]
                  + machine.latency(ir::Opcode::kAdd));
    EXPECT_GT(compiled.cycleCount, 0);
}

TEST(CompileBlockTest, OnlyFinalVersionsWriteBack)
{
    Block b("versions");
    b.assign(ir::Opcode::kAdd, "x", {v("seed"), c(1.0)});
    b.assign(ir::Opcode::kAdd, "x", {v("x"), c(1.0)});
    const auto compiled =
        program::compileBlock(b, machine::cydra5());
    int writers = 0;
    for (const auto& target : compiled.writeback)
        if (target == "x")
            ++writers;
    EXPECT_EQ(writers, 1);
}

// ---------------------------------------------------------------------
// EC/LC loop-control lowering
// ---------------------------------------------------------------------

TEST(ProgramCompilerTest, LowersEcLcIntoPreLoopBlock)
{
    const ProgramCompiler compiler(machine::cydra5());
    const auto result = compiler.compile(smallProgram());
    ASSERT_TRUE(result.ok()) << result.firstError();
    const auto& compiled = *result.compiled;
    ASSERT_FALSE(compiled.pre.empty());
    const auto& last = compiled.pre.back();
    bool lc = false;
    bool ec = false;
    for (const auto& target : last.writeback) {
        lc = lc || target == compiled.control.lc;
        ec = ec || target == compiled.control.ec;
    }
    EXPECT_TRUE(lc) << "no $lc writer in the last pre-loop block";
    EXPECT_TRUE(ec) << "no $ec writer in the last pre-loop block";
}

TEST(ProgramCompilerTest, SynthesizesControlBlockWhenNoPreBlocks)
{
    Program p("unit.bare", workloads::kernelByName("vec_copy").loop);
    const auto result = ProgramCompiler(machine::cydra5()).compile(p);
    ASSERT_TRUE(result.ok()) << result.firstError();
    ASSERT_FALSE(result.compiled->pre.empty());
    EXPECT_EQ(result.compiled->pre.back().name, "loop.control");
}

TEST(ProgramCompilerTest, ControlVariablesStrippedFromFinalState)
{
    const ProgramCompiler compiler(machine::cydra5());
    const auto result = compiler.compile(smallProgram());
    ASSERT_TRUE(result.ok()) << result.firstError();
    const auto spec =
        program::makeProgramSpec(result.compiled->source, 7, 11);
    const auto state = program::runProgramCompiled(*result.compiled, spec);
    for (const auto& [name, value] : state.variables)
        EXPECT_NE(name.front(), program::kControlVarPrefix) << name;
}

TEST(ProgramCompilerTest, ReportsSectionsInProgramOrder)
{
    const ProgramCompiler compiler(machine::cydra5());
    const auto result = compiler.compile(smallProgram());
    ASSERT_TRUE(result.ok()) << result.firstError();
    ASSERT_EQ(result.sections.size(), 3u);
    EXPECT_EQ(result.sections[0].kind, "pre-block");
    EXPECT_EQ(result.sections[1].kind, "loop");
    EXPECT_EQ(result.sections[2].kind, "post-block");
    EXPECT_GT(result.sections[1].ii, 0);
    EXPECT_GT(result.sections[1].stageCount, 0);
    EXPECT_FALSE(result.toJson().empty());
    EXPECT_NE(program::emitProgram(*result.compiled).find("kernel"),
              std::string::npos);
}

TEST(ProgramCompilerTest, BadOpcodeSurfacesAsDiagnosticNotThrow)
{
    Program p = smallProgram();
    p.preBlocks[0].assign(ir::Opcode::kExitIf, "bad", {c(1.0)});
    const auto result = ProgramCompiler(machine::cydra5()).compile(p);
    EXPECT_FALSE(result.ok());
    EXPECT_FALSE(result.firstError().empty());
}

// ---------------------------------------------------------------------
// End-to-end equivalence: whole corpus, low and high trip counts
// ---------------------------------------------------------------------

TEST(ProgramEquivalenceTest, CorpusMatchesSequentialAtAllTrips)
{
    const auto machine = machine::cydra5();
    for (const auto& entry : workloads::programLibrary()) {
        const auto diagnostics = program::programEquivalenceDiagnostics(
            entry.program, machine, ProgramOptions{}, kTrips, 2026);
        for (const auto& d : diagnostics)
            ADD_FAILURE() << entry.program.name << ": [" << d.code << "] "
                          << d.message;
    }
}

TEST(ProgramEquivalenceTest, CorpusMatchesWithCompressionDisabled)
{
    const auto machine = machine::cydra5();
    const auto options = ProgramOptions{}.withCompression(false);
    for (const auto& entry : workloads::programLibrary()) {
        const auto diagnostics = program::programEquivalenceDiagnostics(
            entry.program, machine, options, kTrips, 4051);
        for (const auto& d : diagnostics)
            ADD_FAILURE() << entry.program.name << ": [" << d.code << "] "
                          << d.message;
    }
}

TEST(ProgramEquivalenceTest, TripsBelowStageCountMatchSequential)
{
    // The low-trip-count audit: every trip from 0 up to past the stage
    // count on a deep-pipeline program (mem_recurrence has a 20-cycle
    // load in its recurrence, so SC is large relative to these trips).
    const auto machine = machine::cydra5();
    const auto program = workloads::programByName("prog.memrec");
    const auto result = ProgramCompiler(machine).compile(program);
    ASSERT_TRUE(result.ok()) << result.firstError();
    const int stages = result.compiled->loop.body.stageCount;
    for (int trip = 0; trip <= stages + 2; ++trip) {
        const auto spec = program::makeProgramSpec(program, trip, 97);
        const auto expect = program::runProgramSequential(program, spec);
        const auto actual =
            program::runProgramCompiled(*result.compiled, spec);
        EXPECT_EQ(program::describeStateDifference(expect, actual), "")
            << "trip " << trip << " of " << stages << " stages";
    }
}

TEST(ProgramEquivalenceTest, WrappedKernelsMatchSequential)
{
    const auto machine = machine::cydra5();
    for (const auto* name : {"daxpy", "tridiag", "cond_store",
                             "search_sum"}) {
        const auto program = workloads::wrapLoopAsProgram(
            workloads::kernelByName(name).loop,
            std::string("wrap.") + name);
        const auto diagnostics = program::programEquivalenceDiagnostics(
            program, machine, ProgramOptions{}, kTrips, 7);
        for (const auto& d : diagnostics)
            ADD_FAILURE() << program.name << ": [" << d.code << "] "
                          << d.message;
    }
}

TEST(ProgramEquivalenceTest, WhileLoopProgramRunsFlatSchedule)
{
    const auto machine = machine::cydra5();
    const auto program = workloads::programByName("prog.search");
    const auto result = ProgramCompiler(machine).compile(program);
    ASSERT_TRUE(result.ok()) << result.firstError();
    EXPECT_TRUE(result.compiled->loop.isWhile);
    EXPECT_EQ(result.compiled->prologueOverlap, 0);
    EXPECT_EQ(result.compiled->epilogueOverlap, 0);
    const auto spec = program::makeProgramSpec(program, 12, 5);
    const auto expect = program::runProgramSequential(program, spec);
    const auto actual = program::runProgramCompiled(*result.compiled, spec);
    EXPECT_EQ(program::describeStateDifference(expect, actual), "");
    // The WHILE loop may exit before the trip cap; the iteration count
    // must flow into the program variable either way.
    EXPECT_EQ(actual.variables.count("found"), 1u);
    EXPECT_EQ(actual.loopIterations, expect.loopIterations);
}

TEST(ProgramEquivalenceTest, RegionBuilderProgramCompilesAndMatches)
{
    const auto machine = machine::cydra5();
    const auto program = workloads::programByName("prog.roots");
    const auto diagnostics = program::programEquivalenceDiagnostics(
        program, machine, ProgramOptions{}, kTrips, 13);
    for (const auto& d : diagnostics)
        ADD_FAILURE() << "[" << d.code << "] " << d.message;
}

// ---------------------------------------------------------------------
// Pipeline compression
// ---------------------------------------------------------------------

TEST(CompressionTest, NeverCostsCyclesAndWinsSomewhere)
{
    const auto machine = machine::cydra5();
    bool any_win = false;
    for (const auto& entry : workloads::programLibrary()) {
        const auto result =
            ProgramCompiler(machine).compile(entry.program);
        ASSERT_TRUE(result.ok())
            << entry.program.name << ": " << result.firstError();
        const auto& compiled = *result.compiled;
        for (const int trip : kTrips) {
            EXPECT_LE(compiled.compiledCycles(trip),
                      compiled.naiveCycles(trip))
                << entry.program.name << " at trip " << trip;
        }
        if (compiled.prologueOverlap > 0 || compiled.epilogueOverlap > 0)
            any_win = true;
    }
    EXPECT_TRUE(any_win)
        << "compression found no overlap on any corpus program";
}

TEST(CompressionTest, HydroOverlapsAndStaysEquivalent)
{
    // prog.hydro is built as the compression showcase: independent
    // pre-block tail and post-block head touching only the W array.
    const auto machine = machine::cydra5();
    const auto program = workloads::programByName("prog.hydro");
    const auto result = ProgramCompiler(machine).compile(program);
    ASSERT_TRUE(result.ok()) << result.firstError();
    EXPECT_GT(result.compiled->prologueOverlap
                  + result.compiled->epilogueOverlap,
              0);
    EXPECT_LT(result.compiled->compiledCycles(17),
              result.compiled->naiveCycles(17));
}

TEST(CompressionTest, DisabledCompressionHasNoOverlap)
{
    const auto machine = machine::cydra5();
    const auto options = ProgramOptions{}.withCompression(false);
    const auto result = ProgramCompiler(machine, options)
                            .compile(workloads::programByName("prog.hydro"));
    ASSERT_TRUE(result.ok()) << result.firstError();
    EXPECT_EQ(result.compiled->prologueOverlap, 0);
    EXPECT_EQ(result.compiled->epilogueOverlap, 0);
}

} // namespace
