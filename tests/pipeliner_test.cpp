#include <gtest/gtest.h>

#include "core/pipeliner.hpp"
#include "core/report.hpp"
#include "support/error.hpp"
#include "ir/parser.hpp"
#include "machine/cydra5.hpp"
#include "machine/machines.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;

TEST(PipelinerTest, EndToEndDaxpy)
{
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    const auto w = workloads::kernelByName("daxpy");
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();

    EXPECT_EQ(artifacts.outcome.schedule.ii, 2);
    EXPECT_GE(artifacts.outcome.schedule.scheduleLength,
              artifacts.minScheduleLength);
    EXPECT_GE(artifacts.listSchedule.scheduleLength,
              artifacts.outcome.schedule.ii);
    EXPECT_GE(artifacts.code.kernel.stageCount, 1);
    EXPECT_GE(artifacts.registers.rotatingRegisters, 1);
}

TEST(PipelinerTest, WorksOnParsedMiniIr)
{
    const char* text = R"(
loop from_text
livein a
recurrence ax
ax = aadd ax[3], #24
x = load ax @ X 0
t = mul a, x
_ = store ax, t @ Y 0
recurrence n
n = asub n[3], #3
_ = branch n
)";
    const auto loop = ir::parseLoop(text);
    core::SoftwarePipeliner pipeliner(machine::cydra5());
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(loop)).artifactsOrThrow();
    EXPECT_EQ(artifacts.outcome.schedule.ii, artifacts.outcome.mii);
}

TEST(PipelinerTest, ReportContainsKeyFacts)
{
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    const auto w = workloads::kernelByName("tridiag");
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
    const std::string text = core::report(w.loop, machine, artifacts);
    EXPECT_NE(text.find("MII = 9"), std::string::npos);
    EXPECT_NE(text.find("achieved II = 9"), std::string::npos);
    EXPECT_NE(text.find("kernel"), std::string::npos);
    EXPECT_NE(text.find("speedup"), std::string::npos);

    const std::string line = core::summaryLine(w.loop, artifacts);
    EXPECT_NE(line.find("tridiag"), std::string::npos);
    EXPECT_NE(line.find("II=9"), std::string::npos);
}

TEST(PipelinerTest, ConservativeDelayModeStillPipelines)
{
    core::PipelinerOptions options;
    options.graph.delayMode = graph::DelayMode::kConservative;
    core::SoftwarePipeliner pipeliner(machine::cydra5(), options);
    const auto w = workloads::kernelByName("daxpy");
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
    EXPECT_GE(artifacts.outcome.schedule.ii, artifacts.outcome.mii);
}

// The request/result API is now the only entry point (the deprecated
// Counters* shim was removed); the telemetry record must carry the same
// cross-phase counter aggregation the shim used to expose.
TEST(PipelinerTest, RequestApiCountersAggregateAcrossPhases)
{
    core::SoftwarePipeliner pipeliner(machine::cydra5());
    const auto w = workloads::kernelByName("state_frag");
    const auto result = pipeliner.pipeline(core::PipelineRequest(w.loop));
    const auto& artifacts = result.artifactsOrThrow();
    EXPECT_GE(artifacts.outcome.schedule.ii, artifacts.outcome.mii);
    const auto& counters = result.telemetry.counters;
    EXPECT_GT(counters.resMiiInspections, 0u);
    EXPECT_GT(counters.minDistInvocations, 0u);
    EXPECT_GT(counters.heightRInnerSteps, 0u);
    EXPECT_GT(counters.estartPredecessorVisits, 0u);
    EXPECT_GT(counters.findTimeSlotProbes, 0u);
    EXPECT_GT(counters.scheduleSteps, 0u);
}

TEST(PipelinerTest, RequestResultReportsDiagnosticsInsteadOfThrowing)
{
    const auto w = workloads::kernelByName("daxpy");
    core::SoftwarePipeliner pipeliner(machine::cydra5());

    auto request = core::PipelineRequest(w.loop).withOptions(
        core::PipelinerOptions{}.withDsaForm(false));
    const auto result = pipeliner.pipeline(request);
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.diagnostics.size(), 1u);
    EXPECT_EQ(result.diagnostics[0].severity,
              core::Diagnostic::Severity::kError);
    EXPECT_EQ(result.diagnostics[0].phase, "graph_build");
    EXPECT_FALSE(result.firstError().empty());
    EXPECT_THROW(result.artifactsOrThrow(), support::Error);
    // The failed run still carries its identity in the telemetry record.
    EXPECT_EQ(result.telemetry.loop, w.loop.name());
    EXPECT_FALSE(result.telemetry.succeeded);
}

TEST(PipelinerTest, RequestOptionsOverridePipelinerOptions)
{
    const auto w = workloads::kernelByName("daxpy");
    // Pipeliner-level options would reject the loop; the per-request
    // override restores the defaults, so the call must succeed.
    core::SoftwarePipeliner pipeliner(
        machine::cydra5(), core::PipelinerOptions{}.withDsaForm(false));
    const auto result = pipeliner.pipeline(
        core::PipelineRequest(w.loop).withOptions(core::PipelinerOptions{}));
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.telemetry.ii, result.telemetry.mii);
}

TEST(PipelinerTest, BuilderStyleOptionSettersCompose)
{
    const auto options = core::PipelinerOptions{}
                             .withBudgetRatio(6.0)
                             .withPriority(sched::PriorityScheme::kSlack)
                             .withVerification(false)
                             .withMaxIiIncrease(128)
                             .withForwardProgressRule(false)
                             .withDelayMode(graph::DelayMode::kConservative)
                             .withRandomSeed(42);
    EXPECT_EQ(options.schedule.search.budgetRatio, 6.0);
    EXPECT_EQ(options.schedule.priority, sched::PriorityScheme::kSlack);
    EXPECT_FALSE(options.verify);
    EXPECT_EQ(options.schedule.search.maxIiIncrease, 128);
    EXPECT_FALSE(options.schedule.forwardProgressRule);
    EXPECT_EQ(options.graph.delayMode, graph::DelayMode::kConservative);
    EXPECT_EQ(options.schedule.randomSeed, 42u);

    const auto w = workloads::kernelByName("daxpy");
    core::SoftwarePipeliner pipeliner(machine::cydra5(), options);
    const auto result = pipeliner.pipeline(core::PipelineRequest(w.loop));
    EXPECT_TRUE(result.ok());
}

TEST(PipelinerTest, WithIiSearchSelectsStrategyAndKeepsBudgetKnobs)
{
    const auto options = core::PipelinerOptions{}
                             .withBudgetRatio(6.0)
                             .withMaxIiIncrease(128)
                             .withIiSearch(sched::IiSearchKind::kRacing, 4);
    EXPECT_EQ(options.schedule.search.kind, sched::IiSearchKind::kRacing);
    EXPECT_EQ(options.schedule.search.threads, 4);
    // The kind/threads overload must not clobber the budget knobs.
    EXPECT_EQ(options.schedule.search.budgetRatio, 6.0);
    EXPECT_EQ(options.schedule.search.maxIiIncrease, 128);

    const auto wholesale = core::PipelinerOptions{}.withIiSearch(
        sched::IiSearchOptions{}.withKind(sched::IiSearchKind::kRacing)
            .withBudgetRatio(3.0));
    EXPECT_EQ(wholesale.schedule.search.kind, sched::IiSearchKind::kRacing);
    EXPECT_EQ(wholesale.schedule.search.budgetRatio, 3.0);

    const auto w = workloads::kernelByName("daxpy");
    core::SoftwarePipeliner pipeliner(machine::cydra5(), options);
    const auto result = pipeliner.pipeline(core::PipelineRequest(w.loop));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.telemetry.iiStrategy, "racing");
    EXPECT_GE(result.telemetry.iiAttemptsStarted, 1);
}

TEST(PipelinerTest, IiExhaustionSurfacesStructuredDiagnosticCode)
{
    const auto w = workloads::kernelByName("daxpy");
    // A zero II-increase window above an unreachable MII cannot succeed.
    core::SoftwarePipeliner pipeliner(
        machine::cydra5(),
        core::PipelinerOptions{}.withIiSearch(
            sched::IiSearchOptions{}.withMaxIiIncrease(0).withBudgetRatio(
                0.001)));
    const auto result = pipeliner.pipeline(core::PipelineRequest(w.loop));
    ASSERT_FALSE(result.ok());
    ASSERT_FALSE(result.diagnostics.empty());
    EXPECT_EQ(result.diagnostics[0].code, "sched.ii_exhausted");
    EXPECT_NE(result.firstError().find("daxpy"), std::string::npos);
}

TEST(PipelinerTest, MachineSweepAllKernels)
{
    for (const auto& machine :
         {machine::cydra5(), machine::clean64(), machine::wideVliw(),
          machine::scalarToy()}) {
        core::SoftwarePipeliner pipeliner(machine);
        for (const auto& w : workloads::kernelLibrary()) {
            const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
            EXPECT_GE(artifacts.outcome.schedule.ii,
                      artifacts.outcome.mii)
                << machine.name() << "/" << w.loop.name();
        }
    }
}

TEST(PipelinerTest, WiderMachineNeverRaisesIi)
{
    core::SoftwarePipeliner narrow(machine::clean64());
    core::SoftwarePipeliner wide(machine::wideVliw());
    for (const auto& w : workloads::kernelLibrary()) {
        const auto a = narrow.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
        const auto b = wide.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
        EXPECT_LE(b.outcome.schedule.ii, a.outcome.schedule.ii)
            << w.loop.name();
    }
}

} // namespace
