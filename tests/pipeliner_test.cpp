#include <gtest/gtest.h>

#include "core/pipeliner.hpp"
#include "core/report.hpp"
#include "ir/parser.hpp"
#include "machine/cydra5.hpp"
#include "machine/machines.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;

TEST(PipelinerTest, EndToEndDaxpy)
{
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    const auto w = workloads::kernelByName("daxpy");
    const auto artifacts = pipeliner.pipeline(w.loop);

    EXPECT_EQ(artifacts.outcome.schedule.ii, 2);
    EXPECT_GE(artifacts.outcome.schedule.scheduleLength,
              artifacts.minScheduleLength);
    EXPECT_GE(artifacts.listSchedule.scheduleLength,
              artifacts.outcome.schedule.ii);
    EXPECT_GE(artifacts.code.kernel.stageCount, 1);
    EXPECT_GE(artifacts.registers.rotatingRegisters, 1);
}

TEST(PipelinerTest, WorksOnParsedMiniIr)
{
    const char* text = R"(
loop from_text
livein a
recurrence ax
ax = aadd ax[3], #24
x = load ax @ X 0
t = mul a, x
_ = store ax, t @ Y 0
recurrence n
n = asub n[3], #3
_ = branch n
)";
    const auto loop = ir::parseLoop(text);
    core::SoftwarePipeliner pipeliner(machine::cydra5());
    const auto artifacts = pipeliner.pipeline(loop);
    EXPECT_EQ(artifacts.outcome.schedule.ii, artifacts.outcome.mii);
}

TEST(PipelinerTest, ReportContainsKeyFacts)
{
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    const auto w = workloads::kernelByName("tridiag");
    const auto artifacts = pipeliner.pipeline(w.loop);
    const std::string text = core::report(w.loop, machine, artifacts);
    EXPECT_NE(text.find("MII = 9"), std::string::npos);
    EXPECT_NE(text.find("achieved II = 9"), std::string::npos);
    EXPECT_NE(text.find("kernel"), std::string::npos);
    EXPECT_NE(text.find("speedup"), std::string::npos);

    const std::string line = core::summaryLine(w.loop, artifacts);
    EXPECT_NE(line.find("tridiag"), std::string::npos);
    EXPECT_NE(line.find("II=9"), std::string::npos);
}

TEST(PipelinerTest, ConservativeDelayModeStillPipelines)
{
    core::PipelinerOptions options;
    options.graph.delayMode = graph::DelayMode::kConservative;
    core::SoftwarePipeliner pipeliner(machine::cydra5(), options);
    const auto w = workloads::kernelByName("daxpy");
    const auto artifacts = pipeliner.pipeline(w.loop);
    EXPECT_GE(artifacts.outcome.schedule.ii, artifacts.outcome.mii);
}

TEST(PipelinerTest, CountersAggregateAcrossPhases)
{
    core::SoftwarePipeliner pipeliner(machine::cydra5());
    const auto w = workloads::kernelByName("state_frag");
    support::Counters counters;
    pipeliner.pipeline(w.loop, &counters);
    EXPECT_GT(counters.resMiiInspections, 0u);
    EXPECT_GT(counters.minDistInvocations, 0u);
    EXPECT_GT(counters.heightRInnerSteps, 0u);
    EXPECT_GT(counters.estartPredecessorVisits, 0u);
    EXPECT_GT(counters.findTimeSlotProbes, 0u);
    EXPECT_GT(counters.scheduleSteps, 0u);
}

TEST(PipelinerTest, MachineSweepAllKernels)
{
    for (const auto& machine :
         {machine::cydra5(), machine::clean64(), machine::wideVliw(),
          machine::scalarToy()}) {
        core::SoftwarePipeliner pipeliner(machine);
        for (const auto& w : workloads::kernelLibrary()) {
            const auto artifacts = pipeliner.pipeline(w.loop);
            EXPECT_GE(artifacts.outcome.schedule.ii,
                      artifacts.outcome.mii)
                << machine.name() << "/" << w.loop.name();
        }
    }
}

TEST(PipelinerTest, WiderMachineNeverRaisesIi)
{
    core::SoftwarePipeliner narrow(machine::clean64());
    core::SoftwarePipeliner wide(machine::wideVliw());
    for (const auto& w : workloads::kernelLibrary()) {
        const auto a = narrow.pipeline(w.loop);
        const auto b = wide.pipeline(w.loop);
        EXPECT_LE(b.outcome.schedule.ii, a.outcome.schedule.ii)
            << w.loop.name();
    }
}

} // namespace
