#include <gtest/gtest.h>

#include <set>

#include "graph/graph_builder.hpp"
#include "graph/scc.hpp"
#include "machine/cydra5.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;
using graph::DepEdge;
using graph::DepGraph;
using graph::DepKind;

DepEdge
edge(int from, int to, int delay = 1, int distance = 0)
{
    DepEdge e;
    e.from = from;
    e.to = to;
    e.kind = DepKind::kFlow;
    e.delay = delay;
    e.distance = distance;
    return e;
}

TEST(SccTest, ChainHasOnlyTrivialComponents)
{
    DepGraph g(3);
    g.addEdge(edge(0, 1));
    g.addEdge(edge(1, 2));
    const auto sccs = graph::findSccs(g);
    EXPECT_EQ(sccs.numComponents(), 5); // 3 ops + START + STOP
    EXPECT_EQ(sccs.numNonTrivial(), 0);
}

TEST(SccTest, CycleFormsOneComponent)
{
    DepGraph g(4);
    g.addEdge(edge(0, 1));
    g.addEdge(edge(1, 2));
    g.addEdge(edge(2, 0, 1, 1)); // back edge
    g.addEdge(edge(2, 3));
    const auto sccs = graph::findSccs(g);
    EXPECT_EQ(sccs.numNonTrivial(), 1);
    const int c = sccs.componentOf(0);
    EXPECT_EQ(sccs.componentOf(1), c);
    EXPECT_EQ(sccs.componentOf(2), c);
    EXPECT_NE(sccs.componentOf(3), c);
    EXPECT_TRUE(sccs.isNonTrivial(c));
}

TEST(SccTest, SelfLoopIsStillTrivialPerThePaper)
{
    // §4.2: "a non-trivial SCC is one containing more than one operation";
    // an op with only a reflexive edge stays trivial.
    DepGraph g(2);
    g.addEdge(edge(0, 0, 3, 1));
    g.addEdge(edge(0, 1));
    const auto sccs = graph::findSccs(g);
    EXPECT_EQ(sccs.numNonTrivial(), 0);
}

TEST(SccTest, ComponentsEmittedInReverseTopologicalOrder)
{
    // For every edge u -> v across components, v's component must be
    // emitted (indexed) before u's.
    const auto machine = machine::cydra5();
    for (const auto& w : workloads::kernelLibrary()) {
        const auto g = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(g);
        for (const auto& e : g.edges()) {
            if (sccs.componentOf(e.from) != sccs.componentOf(e.to)) {
                EXPECT_LT(sccs.componentOf(e.to), sccs.componentOf(e.from))
                    << w.loop.name();
            }
        }
    }
}

TEST(SccTest, EveryVertexAssignedExactlyOnce)
{
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("argmax_like");
    const auto g = graph::buildDepGraph(w.loop, machine);
    const auto sccs = graph::findSccs(g);
    std::set<int> seen;
    for (const auto& component : sccs.components()) {
        for (int v : component) {
            EXPECT_TRUE(seen.insert(v).second) << "vertex " << v;
        }
    }
    EXPECT_EQ(static_cast<int>(seen.size()), g.numVertices());
}

TEST(SccTest, TwoOpRecurrenceDetected)
{
    // first_order_rec: mul and add form a 2-op SCC.
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("first_order_rec");
    const auto g = graph::buildDepGraph(w.loop, machine);
    const auto sccs = graph::findSccs(g);
    EXPECT_EQ(sccs.numNonTrivial(), 1);
    auto sizes = sccs.componentSizes();
    EXPECT_EQ(sizes.front(), 2);
}

TEST(SccTest, VectorizableKernelsHaveNoNonTrivialSccs)
{
    const auto machine = machine::cydra5();
    for (const char* name :
         {"init_store", "vec_copy", "daxpy", "hydro_frag", "stencil3"}) {
        const auto w = workloads::kernelByName(name);
        const auto g = graph::buildDepGraph(w.loop, machine);
        EXPECT_EQ(graph::findSccs(g).numNonTrivial(), 0) << name;
    }
}

} // namespace
