#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "machine/compiled_reservations.hpp"
#include "machine/machine_model.hpp"
#include "machine/reservation_table.hpp"
#include "sched/mrt.hpp"

namespace {

using namespace ims;
using machine::CompiledReservationTable;
using machine::CompiledTableCache;
using machine::ReservationTable;
using sched::ModuloReservationTable;

/** Reference slot scan: probe every candidate against the owner cells. */
int
referenceFirstFreeSlot(const ModuloReservationTable& mrt,
                       const ReservationTable& table, int min_time)
{
    for (int t = min_time; t < min_time + mrt.ii(); ++t) {
        if (!mrt.conflicts(table, t))
            return t;
    }
    return -1;
}

ReservationTable
randomTable(std::mt19937& rng, int ii, int num_resources)
{
    std::uniform_int_distribution<int> num_uses(0, 6);
    std::uniform_int_distribution<int> time(0, 3 * ii);
    std::uniform_int_distribution<int> resource(0, num_resources - 1);
    ReservationTable table;
    const int n = num_uses(rng);
    for (int i = 0; i < n; ++i)
        table.addUse(time(rng), resource(rng));
    return table;
}

/**
 * Drives a random reserve/release sequence and checks, after every
 * mutation, that (a) both bitmask views still agree with the owner-cell
 * grid and (b) the compiled-mask conflict test and the word-parallel
 * slot scan give exactly the answers of the owner-cell reference
 * implementation, for every probe table at several probe times.
 */
void
fuzzAgainstReference(unsigned seed, int ii, int num_resources)
{
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " ii=" + std::to_string(ii) +
                 " resources=" + std::to_string(num_resources));
    std::mt19937 rng(seed);
    constexpr int kNumOps = 24;
    constexpr int kNumProbes = 8;
    constexpr int kSteps = 200;

    // One fixed table per op (as in the scheduler, where an op's
    // alternative tables are immutable) plus standalone probe tables.
    std::vector<ReservationTable> opTables;
    for (int op = 0; op < kNumOps; ++op)
        opTables.push_back(randomTable(rng, ii, num_resources));
    std::vector<ReservationTable> probes;
    std::vector<CompiledReservationTable> compiledProbes;
    for (int i = 0; i < kNumProbes; ++i) {
        probes.push_back(randomTable(rng, ii, num_resources));
        compiledProbes.emplace_back(probes.back(), ii, num_resources);
    }

    ModuloReservationTable mrt(ii, num_resources, kNumOps);
    std::vector<bool> held(kNumOps, false);

    std::uniform_int_distribution<int> pick_op(0, kNumOps - 1);
    std::uniform_int_distribution<int> pick_time(0, 4 * ii);
    std::uniform_int_distribution<int> coin(0, 99);

    const auto checkProbes = [&] {
        ASSERT_TRUE(mrt.masksConsistent());
        for (int i = 0; i < kNumProbes; ++i) {
            EXPECT_EQ(compiledProbes[i].selfConflicts(),
                      ModuloReservationTable::selfConflicts(probes[i], ii))
                << "probe " << i;
            for (int trial = 0; trial < 4; ++trial) {
                const int t = pick_time(rng);
                EXPECT_EQ(mrt.conflicts(compiledProbes[i], t),
                          mrt.conflicts(probes[i], t))
                    << "probe " << i << " time " << t;
                if (!compiledProbes[i].selfConflicts()) {
                    EXPECT_EQ(mrt.firstFreeSlot(compiledProbes[i], t),
                              referenceFirstFreeSlot(mrt, probes[i], t))
                        << "probe " << i << " min_time " << t;
                }
            }
        }
    };

    for (int step = 0; step < kSteps; ++step) {
        const int op = pick_op(rng);
        if (held[op]) {
            mrt.release(op);
            held[op] = false;
        } else if (coin(rng) < 70) {
            // Reserve at a conflict-free slot when one exists (reserve
            // requires free cells, like the scheduler after displacement).
            if (ModuloReservationTable::selfConflicts(opTables[op], ii))
                continue;
            const int slot =
                referenceFirstFreeSlot(mrt, opTables[op], pick_time(rng));
            if (slot < 0)
                continue;
            mrt.reserve(op, opTables[op], slot);
            held[op] = true;
        }
        checkProbes();
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

TEST(CompiledMrtTest, RandomizedMatchesOwnerCells)
{
    unsigned seed = 1;
    for (int ii : {1, 2, 3, 5, 7, 13})
        for (int resources : {1, 3, 17})
            fuzzAgainstReference(seed++, ii, resources);
}

TEST(CompiledMrtTest, RandomizedMultiWordColumns)
{
    // IIs past 64 exercise multi-word row bitsets and the cross-word
    // carry in the rotation kernel.
    unsigned seed = 100;
    for (int ii : {63, 64, 65, 70, 128, 130})
        fuzzAgainstReference(seed++, ii, 5);
}

TEST(CompiledMrtTest, RandomizedMultiWordRows)
{
    // More than 64 resources exercises multi-word row occupancy masks.
    unsigned seed = 200;
    for (int resources : {64, 65, 130})
        for (int ii : {3, 7, 66})
            fuzzAgainstReference(seed++, ii, resources);
}

TEST(CompiledMrtTest, CompileReducesUsesModuloIi)
{
    ReservationTable table;
    table.addUse(0, 2);
    table.addUse(5, 1); // rotation 5 mod 3 = 2
    table.addUse(7, 2); // rotation 7 mod 3 = 1
    const CompiledReservationTable compiled(table, 3, 4);
    EXPECT_FALSE(compiled.selfConflicts());
    ASSERT_EQ(compiled.numUses(), 3);
    // Sorted by (rotation, resource).
    EXPECT_EQ(compiled.use(0).rotation, 0);
    EXPECT_EQ(compiled.use(0).resource, 2);
    EXPECT_EQ(compiled.use(1).rotation, 1);
    EXPECT_EQ(compiled.use(1).resource, 2);
    EXPECT_EQ(compiled.use(2).rotation, 2);
    EXPECT_EQ(compiled.use(2).resource, 1);
    ASSERT_EQ(compiled.numRows(), 3);
    EXPECT_EQ(compiled.rowIndex(0), 0);
    EXPECT_EQ(compiled.rowWords(0)[0], std::uint64_t{1} << 2);
    EXPECT_EQ(compiled.rowIndex(2), 2);
    EXPECT_EQ(compiled.rowWords(2)[0], std::uint64_t{1} << 1);
}

TEST(CompiledMrtTest, SelfConflictMergedButDetected)
{
    ReservationTable table;
    table.addUse(0, 0);
    table.addUse(4, 0); // collides with use 0 at II = 4
    const CompiledReservationTable compiled(table, 4, 2);
    EXPECT_TRUE(compiled.selfConflicts());
    // The duplicate (rotation 0, resource 0) is merged away so the masks
    // stay valid for plain conflict queries.
    EXPECT_EQ(compiled.numUses(), 1);
}

TEST(CompiledMrtTest, EmptyTableScansToMinTime)
{
    ModuloReservationTable mrt(5, 2, 2);
    const CompiledReservationTable pseudo(ReservationTable{}, 5, 2);
    EXPECT_TRUE(pseudo.empty());
    EXPECT_EQ(mrt.firstFreeSlot(pseudo, 7), 7);
}

TEST(CompiledMrtTest, CacheReusesPerAlternativeListAndIi)
{
    std::vector<machine::Alternative> alts(2);
    alts[0].table.addUse(0, 0);
    alts[1].table.addUse(1, 1);

    CompiledTableCache cache;
    const auto& first = cache.get(alts, 4, 2);
    EXPECT_EQ(cache.size(), 1u);
    ASSERT_EQ(first.size(), 2u);
    EXPECT_EQ(first[0].ii(), 4);

    // Same key: same entry, same storage.
    const auto& again = cache.get(alts, 4, 2);
    EXPECT_EQ(&again, &first);
    EXPECT_EQ(cache.size(), 1u);

    // A different II is a distinct compilation; earlier references
    // stay valid (deque storage).
    const auto& other = cache.get(alts, 5, 2);
    EXPECT_EQ(other[0].ii(), 5);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(&cache.get(alts, 4, 2), &first);
}

} // namespace
