#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/graph_builder.hpp"
#include "machine/cydra5.hpp"
#include "machine/machines.hpp"
#include "sched/list_scheduler.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;

/** Check the acyclic (distance-0) constraints and resource legality. */
void
checkListSchedule(const ir::Loop& loop,
                  const machine::MachineModel& machine,
                  const graph::DepGraph& graph,
                  const sched::ListScheduleResult& result)
{
    for (const auto& edge : graph.edges()) {
        if (edge.distance != 0 || graph.isPseudo(edge.from) ||
            graph.isPseudo(edge.to)) {
            continue;
        }
        EXPECT_GE(result.times[edge.to],
                  result.times[edge.from] + edge.delay)
            << "edge " << edge.from << "->" << edge.to;
    }
    // No (time, resource) cell used twice.
    std::set<std::pair<int, int>> cells;
    for (int op = 0; op < loop.size(); ++op) {
        const auto& table = machine.info(loop.operation(op).opcode)
                                .alternatives[result.alternatives[op]]
                                .table;
        for (const auto& use : table.uses()) {
            EXPECT_TRUE(cells.insert({result.times[op] + use.time,
                                      use.resource})
                            .second)
                << "double booking by op " << op;
        }
    }
}

TEST(ListSchedulerTest, AllKernelsProduceLegalAcyclicSchedules)
{
    const auto machine = machine::cydra5();
    for (const auto& w : workloads::kernelLibrary()) {
        const auto graph = graph::buildDepGraph(w.loop, machine);
        const auto result = sched::listSchedule(w.loop, machine, graph);
        checkListSchedule(w.loop, machine, graph, result);
    }
}

TEST(ListSchedulerTest, LengthAtLeastCriticalPath)
{
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("long_chain");
    const auto graph = graph::buildDepGraph(w.loop, machine);
    const auto result = sched::listSchedule(w.loop, machine, graph);
    // long_chain: load(20) + 10 chained adds (4 each) + store(1) = 65? The
    // chain starts after the address add (3).
    EXPECT_GE(result.scheduleLength, 3 + 20 + 10 * 4 + 1);
}

TEST(ListSchedulerTest, StopTimeCoversEveryCompletion)
{
    const auto machine = machine::cydra5();
    for (const char* name : {"daxpy", "fat_loop", "wide_tree"}) {
        const auto w = workloads::kernelByName(name);
        const auto graph = graph::buildDepGraph(w.loop, machine);
        const auto result = sched::listSchedule(w.loop, machine, graph);
        for (int op = 0; op < w.loop.size(); ++op) {
            EXPECT_GE(result.scheduleLength,
                      result.times[op] +
                          machine.latency(w.loop.operation(op).opcode))
                << name;
        }
    }
}

TEST(ListSchedulerTest, WiderMachineNeverLengthensSchedule)
{
    // wideVliw has strictly more resources and lower latencies than the
    // clean64 machine, so the list schedule cannot get longer.
    const auto narrow = machine::clean64();
    const auto wide = machine::wideVliw();
    for (const char* name : {"daxpy", "fat_loop", "hydro_frag"}) {
        const auto w = workloads::kernelByName(name);
        const auto g_narrow = graph::buildDepGraph(w.loop, narrow);
        const auto g_wide = graph::buildDepGraph(w.loop, wide);
        EXPECT_LE(
            sched::listSchedule(w.loop, wide, g_wide).scheduleLength,
            sched::listSchedule(w.loop, narrow, g_narrow).scheduleLength)
            << name;
    }
}

TEST(ListSchedulerTest, IndependentOpsPackUpToResourceLimit)
{
    // multi_array on the wide machine: 4 loads can issue in one cycle on
    // the 4 ports.
    const auto machine = machine::wideVliw();
    const auto w = workloads::kernelByName("multi_array");
    const auto graph = graph::buildDepGraph(w.loop, machine);
    const auto result = sched::listSchedule(w.loop, machine, graph);
    std::map<int, int> loads_at;
    for (int op = 0; op < w.loop.size(); ++op) {
        if (w.loop.operation(op).isLoad())
            ++loads_at[result.times[op]];
    }
    int peak = 0;
    for (const auto& [t, n] : loads_at)
        peak = std::max(peak, n);
    EXPECT_GE(peak, 2); // must exploit some parallelism
}

} // namespace
