#include <gtest/gtest.h>

#include "fuzz/machine_gen.hpp"
#include "graph/graph_builder.hpp"
#include "graph/scc.hpp"
#include "machine/cydra5.hpp"
#include "sched/exact_scheduler.hpp"
#include "sched/schedule.hpp"
#include "sched/verifier.hpp"
#include "sim/pipeline_simulator.hpp"
#include "sim/sequential_interpreter.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_loops.hpp"

namespace {

using namespace ims;

sched::ScheduleOptions
exactOptions()
{
    sched::ScheduleOptions options;
    options.strategy = sched::SchedulerStrategy::kExact;
    return options;
}

/** Acceptance: the exact backend decides every kernel-corpus loop within
 *  the default node budget, proving II = MII on cydra5 (every failed
 *  candidate below the winner is a kInfeasible proof, never a budget
 *  exhaustion). */
TEST(ExactSchedulerTest, KernelCorpusProvesOptimalIi)
{
    const auto machine = machine::cydra5();
    const auto options = exactOptions();
    for (const auto& w : workloads::kernelLibrary()) {
        const auto g = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(g);
        const auto outcome =
            sched::schedule(w.loop, machine, g, sccs, options);
        EXPECT_EQ(outcome.scheduler, "exact") << w.loop.name();
        EXPECT_EQ(outcome.schedule.ii, outcome.mii) << w.loop.name();
        EXPECT_EQ(outcome.search.attemptsProvenInfeasible, 0)
            << w.loop.name();
        const auto violations = sched::verifySchedule(
            w.loop, machine, g, outcome.schedule);
        ASSERT_TRUE(violations.empty())
            << w.loop.name() << ": " << violations.front().toString();
    }
}

/** Cross-backend property over random loops: wherever the exact search
 *  completes within a reduced budget, its II is a proven optimum, so it
 *  never exceeds the iterative backend's II, and the schedule itself
 *  must pass the structural verifier and sequential-vs-pipelined
 *  simulation at several trip counts. */
TEST(ExactSchedulerTest, CrossBackendPropertyOnFuzzLoops)
{
    const auto machine = machine::cydra5();
    const auto profile = workloads::fuzzProfile();
    sched::ScheduleOptions iterative;
    auto exact = exactOptions();
    exact.exactNodeBudget = 100000;

    support::Rng rng(20260806);
    int decided = 0, skipped = 0;
    for (int k = 0; k < 200; ++k) {
        const auto loop = workloads::generateLoop(
            rng, "xbk_" + std::to_string(k), profile);
        const auto g = graph::buildDepGraph(loop, machine);
        const auto sccs = graph::findSccs(g);
        const auto heuristic =
            sched::schedule(loop, machine, g, sccs, iterative);

        sched::ModuloScheduleOutcome outcome;
        try {
            outcome = sched::schedule(loop, machine, g, sccs, exact);
        } catch (const support::CodedError& error) {
            ASSERT_EQ(error.code(), "exact.budget_exhausted")
                << loop.name();
            ++skipped; // undecided within the reduced budget
            continue;
        }
        ++decided;
        EXPECT_GE(outcome.schedule.ii, outcome.mii) << loop.name();
        EXPECT_LE(outcome.schedule.ii, heuristic.schedule.ii)
            << loop.name();
        const auto violations =
            sched::verifySchedule(loop, machine, g, outcome.schedule);
        ASSERT_TRUE(violations.empty())
            << loop.name() << ": " << violations.front().toString();
        for (const int trips : {0, 1, 2, 5, 17}) {
            const auto spec = workloads::makeSimSpec(loop, trips, 77);
            const auto seq = sim::runSequential(loop, spec);
            const auto pipe =
                sim::runPipelined(loop, outcome.schedule, spec);
            EXPECT_TRUE(sim::equivalent(seq, pipe.state))
                << loop.name() << " at " << trips << " trips";
        }
    }
    // The reduced budget decides the overwhelming majority of the
    // corpus; if this drops, the backend (or the budget accounting)
    // regressed.
    EXPECT_GE(decided, 150) << "skipped " << skipped;
}

/** A deterministic random machine where the MII is provably infeasible:
 *  the exact backend must refute II = 4 and settle at 5, counting the
 *  refutation in attemptsProvenInfeasible. */
TEST(ExactSchedulerTest, ProvesMiiInfeasibleOnAdversarialMachine)
{
    support::Rng rng(777013);
    const auto machine = fuzz::generateMachine(rng, "m13");
    const auto loop =
        workloads::generateLoop(rng, "gap_13", workloads::fuzzProfile());
    const auto g = graph::buildDepGraph(loop, machine);
    const auto sccs = graph::findSccs(g);
    const auto outcome =
        sched::schedule(loop, machine, g, sccs, exactOptions());
    EXPECT_EQ(outcome.mii, 4);
    EXPECT_EQ(outcome.schedule.ii, 5);
    EXPECT_EQ(outcome.search.attemptsProvenInfeasible, 1);
    ASSERT_EQ(outcome.search.records.size(), 2u);
    EXPECT_EQ(outcome.search.records[0].status,
              sched::AttemptStatus::kInfeasible);
    EXPECT_EQ(outcome.search.records[1].status,
              sched::AttemptStatus::kScheduled);
    EXPECT_TRUE(
        sched::verifySchedule(loop, machine, g, outcome.schedule).empty());
}

/** The racing II search must produce bit-identical deterministic results
 *  for the exact backend at any worker count, including the
 *  proven-infeasible accounting. */
TEST(ExactSchedulerTest, RacingMatchesLinearBitIdentically)
{
    support::Rng rng(777013);
    const auto machine = fuzz::generateMachine(rng, "m13");
    const auto loop =
        workloads::generateLoop(rng, "gap_13", workloads::fuzzProfile());
    const auto g = graph::buildDepGraph(loop, machine);
    const auto sccs = graph::findSccs(g);

    const auto linear =
        sched::schedule(loop, machine, g, sccs, exactOptions());
    for (const int threads : {2, 4}) {
        auto options = exactOptions();
        options.search.kind = sched::IiSearchKind::kRacing;
        options.search.threads = threads;
        const auto racing =
            sched::schedule(loop, machine, g, sccs, options);
        EXPECT_EQ(racing.schedule.ii, linear.schedule.ii);
        EXPECT_EQ(racing.schedule.times, linear.schedule.times);
        EXPECT_EQ(racing.schedule.alternatives,
                  linear.schedule.alternatives);
        EXPECT_EQ(racing.mii, linear.mii);
        EXPECT_EQ(racing.attempts, linear.attempts);
        EXPECT_EQ(racing.totalSteps, linear.totalSteps);
        EXPECT_EQ(racing.scheduler, "exact");
        EXPECT_EQ(racing.search.attemptsProvenInfeasible,
                  linear.search.attemptsProvenInfeasible);
        ASSERT_EQ(racing.search.records.size(),
                  linear.search.records.size());
        for (std::size_t i = 0; i < linear.search.records.size(); ++i) {
            EXPECT_EQ(racing.search.records[i].ii,
                      linear.search.records[i].ii);
            EXPECT_EQ(racing.search.records[i].status,
                      linear.search.records[i].status);
        }
    }
}

/** Direct unit test of the decision statuses: an II below feasibility is
 *  *proven* infeasible, and a tiny budget reports exhaustion, not
 *  infeasibility. */
TEST(ExactSchedulerTest, TryScheduleStatuses)
{
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("daxpy");
    const auto g = graph::buildDepGraph(w.loop, machine);
    const auto sccs = graph::findSccs(g);
    sched::ExactScheduler scheduler(w.loop, machine, g, sccs);

    auto status = sched::AttemptStatus::kScheduled;
    EXPECT_FALSE(scheduler
                     .trySchedule(1, sched::kDefaultExactNodeBudget,
                                  nullptr, &status)
                     .has_value());
    EXPECT_EQ(status, sched::AttemptStatus::kInfeasible);

    const auto feasible = scheduler.trySchedule(
        2, sched::kDefaultExactNodeBudget, nullptr, &status);
    ASSERT_TRUE(feasible.has_value());
    EXPECT_EQ(status, sched::AttemptStatus::kScheduled);
    EXPECT_EQ(feasible->ii, 2);

    EXPECT_FALSE(scheduler.trySchedule(2, 1, nullptr, &status).has_value());
    EXPECT_EQ(status, sched::AttemptStatus::kBudgetExhausted);
}

/** Driver-level budget exhaustion surfaces as the coded error the tools
 *  and the fuzz oracle key on. */
TEST(ExactSchedulerTest, BudgetExhaustionThrowsCodedError)
{
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("daxpy");
    const auto g = graph::buildDepGraph(w.loop, machine);
    const auto sccs = graph::findSccs(g);
    auto options = exactOptions();
    options.exactNodeBudget = 1;
    try {
        sched::schedule(w.loop, machine, g, sccs, options);
        FAIL() << "expected exact.budget_exhausted";
    } catch (const support::CodedError& error) {
        EXPECT_EQ(error.code(), "exact.budget_exhausted");
    }
}

} // namespace
