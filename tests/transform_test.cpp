#include <gtest/gtest.h>

#include "core/pipeliner.hpp"
#include "graph/graph_builder.hpp"
#include "ir/loop_builder.hpp"
#include "machine/cydra5.hpp"
#include "mii/res_mii.hpp"
#include "sim/pipeline_simulator.hpp"
#include "sim/sequential_interpreter.hpp"
#include "support/error.hpp"
#include "transform/unroll.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;
using ir::Opcode;

/** Compare one array's logical contents over the original index range. */
void
expectSameArrayContents(const ir::Loop& original, const sim::SimResult& a,
                        const sim::SimResult& b, int trip, int margin)
{
    int max_stride = 1;
    for (const auto& op : original.operations()) {
        if (op.memRef)
            max_stride = std::max(max_stride, op.memRef->stride);
    }
    const int from = -margin;
    const int count = max_stride * trip + 2 * margin;
    for (ir::ArrayId arr = 0; arr < original.numArrays(); ++arr) {
        const auto sa = a.memory.snapshot(arr, from, count);
        const auto sb = b.memory.snapshot(arr, from, count);
        for (int k = 0; k < count; ++k) {
            EXPECT_TRUE(sim::sameValue(sa[k], sb[k]))
                << original.arrays()[arr].name << "[" << from + k
                << "]: " << sa[k] << " vs " << sb[k];
        }
    }
}

TEST(UnrollTest, FactorOneIsIdentityShaped)
{
    const auto w = workloads::kernelByName("daxpy");
    const auto unrolled = transform::unrollLoop(w.loop, 1);
    EXPECT_EQ(unrolled.size(), w.loop.size());
    EXPECT_NO_THROW(unrolled.validate());
}

TEST(UnrollTest, OpCountScalesWithBody)
{
    const auto w = workloads::kernelByName("daxpy"); // 6 body + 2 tail
    const auto unrolled = transform::unrollLoop(w.loop, 4);
    EXPECT_EQ(unrolled.size(), 4 * (w.loop.size() - 2) + 2);
}

TEST(UnrollTest, AccumulatorDistanceFoldsToOnePerCopy)
{
    // dot_bs4: s = add s[4], t. Unrolled by 4, each copy's accumulator
    // reads its own previous instance at distance 1.
    const auto w = workloads::kernelByName("dot_bs4");
    const auto unrolled = transform::unrollLoop(w.loop, 4);
    int self_edges = 0;
    for (const auto& op : unrolled.operations()) {
        if (op.opcode != Opcode::kAdd)
            continue;
        for (const auto& src : op.sources) {
            if (src.isRegister() && src.reg == op.dest) {
                EXPECT_EQ(src.distance, 1);
                ++self_edges;
            }
        }
    }
    EXPECT_EQ(self_edges, 4);
}

TEST(UnrollTest, StridesAndOffsetsFold)
{
    const auto w = workloads::kernelByName("vec_copy");
    const auto unrolled = transform::unrollLoop(w.loop, 2);
    // Loads must access X[2i] and X[2i+1].
    std::vector<std::pair<int, int>> accesses; // (stride, offset)
    for (const auto& op : unrolled.operations()) {
        if (op.isLoad())
            accesses.push_back({op.memRef->stride, op.memRef->offset});
    }
    ASSERT_EQ(accesses.size(), 2u);
    EXPECT_EQ(accesses[0], (std::pair<int, int>{2, 0}));
    EXPECT_EQ(accesses[1], (std::pair<int, int>{2, 1}));
}

TEST(UnrollTest, CounterReadOutsideTailRejected)
{
    // The branch-read counter value escapes into a store: the control
    // tail cannot be stripped, so unrolling must refuse.
    ir::Loop loop("bad");
    const auto arr = loop.addArray({"Y"});
    const auto ax = loop.addRegister({"ax", false, true});
    const auto n = loop.addRegister({"n", false, true});

    ir::Operation addr;
    addr.opcode = Opcode::kAddrAdd;
    addr.dest = ax;
    addr.sources = {ir::Operand::makeReg(ax, 3),
                    ir::Operand::makeImm(24)};
    loop.addOperation(addr);

    ir::Operation dec;
    dec.opcode = Opcode::kAddrSub;
    dec.dest = n;
    dec.sources = {ir::Operand::makeReg(n, 3), ir::Operand::makeImm(3)};
    loop.addOperation(dec);

    ir::Operation store;
    store.opcode = Opcode::kStore;
    store.sources = {ir::Operand::makeReg(ax),
                     ir::Operand::makeReg(n)}; // counter escapes
    store.memRef = ir::MemRef{arr, 0};
    loop.addOperation(store);

    ir::Operation branch;
    branch.opcode = Opcode::kBranch;
    branch.sources = {ir::Operand::makeReg(n)};
    loop.addOperation(branch);

    loop.validate();
    EXPECT_THROW(transform::unrollLoop(loop, 2), support::Error);
}

TEST(UnrollTest, SimulationMatchesOriginal)
{
    for (const char* name :
         {"daxpy", "dot_bs4", "first_order_rec", "stencil3",
          "mem_recurrence", "cond_store", "max_reduce"}) {
        const auto w = workloads::kernelByName(name);
        for (const int factor : {2, 3}) {
            const auto unrolled = transform::unrollLoop(w.loop, factor);
            const int trip = 24; // divisible by 2 and 3
            const auto spec = workloads::makeSimSpec(w.loop, trip, 5);
            const auto mapped =
                transform::unrolledSimSpec(w.loop, spec, factor);
            const auto a = sim::runSequential(w.loop, spec);
            const auto b = sim::runSequential(unrolled, mapped);
            expectSameArrayContents(w.loop, a, b, trip, spec.margin);
        }
    }
}

TEST(UnrollTest, UnrolledLoopStillPipelinesAndSimulates)
{
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    const auto w = workloads::kernelByName("daxpy");
    const auto unrolled = transform::unrollLoop(w.loop, 2);
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(unrolled)).artifactsOrThrow();
    EXPECT_GE(artifacts.outcome.schedule.ii, artifacts.outcome.mii);

    const int trip = 24;
    const auto spec = workloads::makeSimSpec(w.loop, trip, 7);
    const auto mapped = transform::unrolledSimSpec(w.loop, spec, 2);
    const auto seq = sim::runSequential(w.loop, spec);
    const auto pipe =
        sim::runPipelined(unrolled, artifacts.outcome.schedule, mapped);
    expectSameArrayContents(w.loop, seq, pipe.state, trip, spec.margin);
}

TEST(UnrollTest, RecoversFractionalResMii)
{
    // dual_store's memory usage is 3 references over 2 ports with no
    // other bottleneck: ResMII(1) = 2 (a 33% round-up over the rational
    // 1.5). Unrolled by two, the MII per original iteration drops to 3/2
    // (§2's motivation for unrolling prior to modulo scheduling).
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("dual_store");
    const auto res1 = mii::computeResMii(w.loop, machine);
    EXPECT_EQ(res1.resMii, 2);

    const auto unrolled = transform::unrollLoop(w.loop, 2);
    const auto res2 = mii::computeResMii(unrolled, machine);
    EXPECT_EQ(res2.resMii, 3); // 1.5 per original iteration

    core::SoftwarePipeliner pipeliner(machine);
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(unrolled)).artifactsOrThrow();
    EXPECT_LT(static_cast<double>(artifacts.outcome.schedule.ii) / 2,
              2.0);
}

TEST(UnrollTest, SpecMappingRequiresDivisibleTrip)
{
    const auto w = workloads::kernelByName("daxpy");
    const auto spec = workloads::makeSimSpec(w.loop, 10, 1);
    EXPECT_THROW(transform::unrolledSimSpec(w.loop, spec, 3),
                 support::Error);
}

} // namespace
