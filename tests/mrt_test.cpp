#include <gtest/gtest.h>

#include "machine/reservation_table.hpp"
#include "sched/mrt.hpp"

namespace {

using namespace ims;
using machine::ReservationTable;
using sched::ModuloReservationTable;

TEST(MrtTest, ConflictWrapsModuloIi)
{
    ModuloReservationTable mrt(3, 2, 4);
    ReservationTable table;
    table.addUse(0, 0);
    mrt.reserve(0, table, 2);
    // Row 2 of resource 0 now taken: any time congruent to 2 mod 3
    // conflicts.
    EXPECT_TRUE(mrt.conflicts(table, 2));
    EXPECT_TRUE(mrt.conflicts(table, 5));
    EXPECT_TRUE(mrt.conflicts(table, 8));
    EXPECT_FALSE(mrt.conflicts(table, 0));
    EXPECT_FALSE(mrt.conflicts(table, 1));
}

TEST(MrtTest, ComplexTableMapsEachUse)
{
    ModuloReservationTable mrt(4, 3, 4);
    ReservationTable table;
    table.addUse(0, 0);
    table.addUse(2, 1);
    table.addUse(5, 2); // wraps to row (t+5) mod 4
    mrt.reserve(1, table, 3);
    EXPECT_EQ(mrt.owner(3, 0), 1);       // 3+0 mod 4
    EXPECT_EQ(mrt.owner(1, 1), 1);       // 3+2 mod 4
    EXPECT_EQ(mrt.owner(0, 2), 1);       // 3+5 mod 4
    EXPECT_EQ(mrt.reservedCellCount(), 3);
}

TEST(MrtTest, ReleaseFreesAllCells)
{
    ModuloReservationTable mrt(4, 2, 4);
    ReservationTable table;
    table.addUse(0, 0);
    table.addUse(1, 1);
    mrt.reserve(2, table, 0);
    EXPECT_EQ(mrt.reservedCellCount(), 2);
    mrt.release(2);
    EXPECT_EQ(mrt.reservedCellCount(), 0);
    EXPECT_FALSE(mrt.conflicts(table, 0));
}

TEST(MrtTest, ConflictingOpsReportsUniqueOwners)
{
    ModuloReservationTable mrt(2, 3, 5);
    ReservationTable a;
    a.addUse(0, 0);
    ReservationTable b;
    b.addUse(0, 1);
    mrt.reserve(3, a, 0);
    mrt.reserve(4, b, 1);

    ReservationTable probe;
    probe.addUse(0, 0); // hits op 3 at row 0
    probe.addUse(1, 1); // hits op 4 at row 1
    const auto owners = mrt.conflictingOps(probe, 0);
    ASSERT_EQ(owners.size(), 2u);
    EXPECT_EQ(owners[0], 3);
    EXPECT_EQ(owners[1], 4);
}

TEST(MrtTest, SelfConflictDetection)
{
    ReservationTable block;
    block.addBlockUse(0, 5, 0); // 6 consecutive uses of one resource
    EXPECT_TRUE(ModuloReservationTable::selfConflicts(block, 5));
    EXPECT_TRUE(ModuloReservationTable::selfConflicts(block, 3));
    EXPECT_FALSE(ModuloReservationTable::selfConflicts(block, 6));

    ReservationTable gap;
    gap.addUse(0, 0);
    gap.addUse(5, 0);
    EXPECT_TRUE(ModuloReservationTable::selfConflicts(gap, 5));
    EXPECT_TRUE(ModuloReservationTable::selfConflicts(gap, 1));
    EXPECT_FALSE(ModuloReservationTable::selfConflicts(gap, 4));

    ReservationTable multi;
    multi.addUse(0, 0);
    multi.addUse(1, 1);
    EXPECT_FALSE(ModuloReservationTable::selfConflicts(multi, 1));
}

TEST(MrtTest, EmptyTableNeverConflicts)
{
    ModuloReservationTable mrt(1, 1, 2);
    ReservationTable pseudo;
    EXPECT_FALSE(mrt.conflicts(pseudo, 0));
    mrt.reserve(0, pseudo, 0);
    EXPECT_EQ(mrt.reservedCellCount(), 0);
}

} // namespace
