/**
 * @file
 * Bit-identity tests for the incremental Estart tracker.
 *
 * The EstartTracker (sched/attempt_state.hpp) replaces the per-step
 * in-edge rescan of Figure 5(b) with cached values updated by delta on
 * place/displace. Its correctness claim is exact equality, so the tests
 * replay recorded scheduling traces against a from-scratch oracle that
 * rescans every in-edge at every step: any divergence between the cached
 * value and the rescan is a bug, not a quality difference.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/graph_builder.hpp"
#include "graph/scc.hpp"
#include "machine/cydra5.hpp"
#include "sched/attempt_feedback.hpp"
#include "sched/iterative_scheduler.hpp"
#include "sched/schedule.hpp"
#include "support/counters.hpp"
#include "support/rng.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_loops.hpp"

namespace {

using namespace ims;

/**
 * From-scratch Estart oracle: mirrors the partial schedule by applying
 * each trace event, and answers Estart queries by rescanning every
 * in-edge against the currently scheduled predecessors — the exact
 * computation the incremental tracker's cache must reproduce.
 */
class ReplayOracle
{
  public:
    ReplayOracle(const graph::DepGraph& graph, int ii)
        : graph_(graph),
          ii_(ii),
          time_(graph.numVertices(), 0),
          scheduled_(graph.numVertices(), 0)
    {
        // The scheduler places START at time 0 before the first traced
        // step.
        scheduled_[graph.start()] = 1;
        time_[graph.start()] = 0;
    }

    /** Figure 5(b) over the mirrored schedule. */
    int
    estart(graph::VertexId op) const
    {
        std::int64_t estart = 0;
        for (const graph::Dep& dep : graph_.inDeps(op)) {
            if (dep.other == op || !scheduled_[dep.other])
                continue;
            const std::int64_t bound =
                time_[dep.other] + dep.delay -
                static_cast<std::int64_t>(ii_) * dep.distance;
            estart = std::max(estart, bound);
        }
        return static_cast<int>(estart);
    }

    /** Apply one step: the displacements and the placement itself. */
    void
    apply(const sched::TraceEvent& event)
    {
        for (graph::VertexId victim : event.displaced)
            scheduled_[victim] = 0;
        scheduled_[event.op] = 1;
        time_[event.op] = event.slot;
    }

  private:
    const graph::DepGraph& graph_;
    int ii_;
    std::vector<int> time_;
    std::vector<std::uint8_t> scheduled_;
};

/** Replays `trace` and fails the test on the first Estart divergence. */
void
expectTraceMatchesOracle(const graph::DepGraph& graph, int ii,
                         const std::vector<sched::TraceEvent>& trace,
                         const std::string& context)
{
    ReplayOracle oracle(graph, ii);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const auto& event = trace[i];
        ASSERT_EQ(event.estart, oracle.estart(event.op))
            << context << " step " << i << " op " << event.op;
        oracle.apply(event);
    }
}

/**
 * Schedule with the default options to learn the winning II and budget,
 * then rerun that single attempt with tracing and replay it against the
 * oracle. Accumulates the displacement count (for the storm test) into
 * `displacements` when non-null. (ASSERTs force a void return type.)
 */
void
checkKernelAgainstOracle(const ir::Loop& loop,
                         const machine::MachineModel& machine,
                         support::Counters& counters,
                         std::int64_t* displacements = nullptr)
{
    const auto graph = graph::buildDepGraph(loop, machine);
    const auto sccs = graph::findSccs(graph);
    const auto outcome = sched::schedule(loop, machine, graph, sccs);

    std::vector<sched::TraceEvent> trace;
    sched::IterativeScheduleOptions options;
    options.trace = &trace;
    sched::IterativeScheduler scheduler(loop, machine, graph, sccs, options,
                                        &counters);
    const auto result =
        scheduler.trySchedule(outcome.schedule.ii, outcome.budget);

    ASSERT_TRUE(result.has_value()) << loop.name();
    EXPECT_EQ(result->times, outcome.schedule.times) << loop.name();
    EXPECT_EQ(result->alternatives, outcome.schedule.alternatives)
        << loop.name();
    expectTraceMatchesOracle(graph, outcome.schedule.ii, trace,
                             loop.name());

    // Displacement storms live at the tight IIs the search rejected: rerun
    // the first candidate too when the winner sits above the MII.
    std::int64_t storm = result->unschedules;
    if (outcome.schedule.ii > outcome.mii) {
        std::vector<sched::TraceEvent> tight_trace;
        sched::IterativeScheduleOptions tight_options;
        tight_options.trace = &tight_trace;
        sched::IterativeScheduler tight(loop, machine, graph, sccs,
                                        tight_options, &counters);
        const auto failed = tight.trySchedule(outcome.mii, outcome.budget);
        EXPECT_FALSE(failed.has_value()) << loop.name();
        expectTraceMatchesOracle(graph, outcome.mii, tight_trace,
                                 loop.name() + " @mii");
        for (const auto& event : tight_trace)
            storm += static_cast<std::int64_t>(event.displaced.size());
    }
    if (displacements != nullptr)
        *displacements += storm;
}

TEST(EstartTest, TraceReplayMatchesFromScratchOracleOnKernelCorpus)
{
    const auto machine = machine::cydra5();
    support::Counters counters;
    for (const auto& w : workloads::kernelLibrary())
        checkKernelAgainstOracle(w.loop, machine, counters);
    // The tracker must actually serve queries from the cache; an
    // implementation that marks everything dirty every step would pass
    // the equality check while recomputing from scratch throughout.
    EXPECT_GT(counters.estartIncrementalHits, 0u);
    EXPECT_GT(counters.estartPredecessorVisits, 0u);
}

TEST(EstartTest, DisplacementStormKeepsCacheAndOracleInAgreement)
{
    // Regression for the tracker's downgrade path: a displacement can
    // *lower* a successor's Estart, which a monotone max-relax cache
    // cannot express — onRemove must dirty the successors so the next
    // query recomputes. Loops whose winning II exceeds the MII produce
    // exactly these storms at the rejected tight IIs (which
    // checkKernelAgainstOracle replays against the oracle); the
    // recurrence-heavy fuzz profile generates them reliably, so here we
    // only require that the storms actually happened.
    const auto machine = machine::cydra5();
    support::Rng rng(424242);
    const auto profile = workloads::fuzzProfile();
    support::Counters counters;
    std::int64_t displacements = 0;
    for (const auto& w : workloads::kernelLibrary())
        checkKernelAgainstOracle(w.loop, machine, counters,
                                 &displacements);
    for (int i = 0; i < 100; ++i) {
        const auto loop = workloads::generateLoop(
            rng, "storm_" + std::to_string(i), profile);
        checkKernelAgainstOracle(loop, machine, counters, &displacements);
    }
    EXPECT_GT(displacements, 50) << "corpus no longer exercises "
                                    "displacement storms; the downgrade "
                                    "path is untested";
    EXPECT_GT(counters.unscheduleSteps, 0u);
}

TEST(EstartTest, FuzzLoopsMatchOracleAndStayThreadInvariant)
{
    const auto machine = machine::cydra5();
    support::Rng rng(20260808);
    const auto profile = workloads::fuzzProfile();
    support::Counters oracle_counters;
    for (int i = 0; i < 200; ++i) {
        const auto loop = workloads::generateLoop(
            rng, "estart_fuzz_" + std::to_string(i), profile);
        checkKernelAgainstOracle(loop, machine, oracle_counters);

        // The incremental-hit counter is part of the deterministic
        // prefix, so racing searches must reproduce it bit-for-bit at
        // every thread count (alongside the schedule itself).
        sched::ScheduleOptions linear;
        support::Counters linear_counters;
        const auto expected =
            sched::schedule(loop, machine, linear, &linear_counters);
        for (const int threads : {1, 4, 8}) {
            sched::ScheduleOptions racing;
            racing.search.withKind(sched::IiSearchKind::kRacing)
                .withThreads(threads);
            support::Counters racing_counters;
            const auto got =
                sched::schedule(loop, machine, racing, &racing_counters);
            const std::string context =
                loop.name() + " threads=" + std::to_string(threads);
            EXPECT_EQ(expected.schedule.ii, got.schedule.ii) << context;
            EXPECT_EQ(expected.schedule.times, got.schedule.times)
                << context;
            EXPECT_EQ(expected.schedule.alternatives,
                      got.schedule.alternatives)
                << context;
            EXPECT_EQ(linear_counters.estartIncrementalHits,
                      racing_counters.estartIncrementalHits)
                << context;
            EXPECT_EQ(linear_counters.estartPredecessorVisits,
                      racing_counters.estartPredecessorVisits)
                << context;
        }
    }
    EXPECT_GT(oracle_counters.estartIncrementalHits, 0u);
}

} // namespace
