#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/pipeliner.hpp"
#include "sched/attempt_feedback.hpp"
#include "sched/iterative_scheduler.hpp"
#include "sched/mrt.hpp"
#include "graph/graph_builder.hpp"
#include "graph/scc.hpp"
#include "machine/cydra5.hpp"
#include "machine/machines.hpp"
#include "mii/mii.hpp"
#include "mii/rec_mii.hpp"
#include "sched/verifier.hpp"
#include "sim/pipeline_simulator.hpp"
#include "sim/sequential_interpreter.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_loops.hpp"

namespace {

using namespace ims;

machine::MachineModel
machineByName(const std::string& name)
{
    if (name == "cydra5")
        return machine::cydra5();
    if (name == "clean64")
        return machine::clean64();
    if (name == "wide-vliw")
        return machine::wideVliw();
    return machine::scalarToy();
}

std::vector<std::string>
kernelNames()
{
    std::vector<std::string> names;
    for (const auto& w : workloads::kernelLibrary())
        names.push_back(w.loop.name());
    return names;
}

/**
 * Invariant sweep over (kernel, machine): every schedule the pipeliner
 * produces is verified legal, II and SL respect their lower bounds, and
 * executing the pipelined schedule is bit-identical to the sequential
 * reference.
 */
class KernelMachineProperty
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>>
{
};

TEST_P(KernelMachineProperty, ScheduleLegalAndSemanticsPreserved)
{
    const auto [kernel_name, machine_name] = GetParam();
    const auto machine = machineByName(machine_name);
    const auto w = workloads::kernelByName(kernel_name);

    core::SoftwarePipeliner pipeliner(machine);
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
    const auto& schedule = artifacts.outcome.schedule;

    // II bounds.
    EXPECT_GE(schedule.ii, artifacts.outcome.mii);
    EXPECT_GE(artifacts.outcome.mii, artifacts.outcome.resMii);

    // Legality (the pipeliner already verified; double-check here so the
    // property holds even with verify disabled).
    EXPECT_TRUE(sched::verifySchedule(w.loop, machine, artifacts.depGraph,
                                      schedule)
                    .empty());

    // Schedule length within bounds.
    EXPECT_GE(schedule.scheduleLength, artifacts.minScheduleLength);

    // Semantic equivalence at two trip counts (one barely above the stage
    // count, one comfortably larger).
    for (const int trip : {artifacts.code.kernel.stageCount + 1, 37}) {
        const auto spec = workloads::makeSimSpec(w.loop, trip, 1234);
        const auto seq = sim::runSequential(w.loop, spec);
        const auto pipe = sim::runPipelined(w.loop, schedule, spec);
        EXPECT_TRUE(sim::equivalent(seq, pipe.state)) << "trip " << trip;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllMachines, KernelMachineProperty,
    ::testing::Combine(::testing::ValuesIn(kernelNames()),
                       ::testing::Values("cydra5", "clean64", "wide-vliw",
                                         "scalar-toy")),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, std::string>>& info) {
        std::string name = std::get<0>(info.param) + "_on_" +
                           std::get<1>(info.param);
        for (auto& c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

/** Property sweep over random loops: generate, schedule, verify, run. */
class RandomLoopProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomLoopProperty, RandomLoopsScheduleVerifyAndSimulate)
{
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);

    for (int k = 0; k < 25; ++k) {
        const auto loop = workloads::generateLoop(
            rng, "prop_" + std::to_string(GetParam()) + "_" +
                     std::to_string(k));
        const auto artifacts = pipeliner.pipeline(core::PipelineRequest(loop)).artifactsOrThrow();
        EXPECT_TRUE(sched::verifySchedule(loop, machine,
                                          artifacts.depGraph,
                                          artifacts.outcome.schedule)
                        .empty())
            << loop.name();

        const auto spec = workloads::makeSimSpec(loop, 20, 99);
        const auto seq = sim::runSequential(loop, spec);
        const auto pipe =
            sim::runPipelined(loop, artifacts.outcome.schedule, spec);
        EXPECT_TRUE(sim::equivalent(seq, pipe.state)) << loop.name();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLoopProperty,
                         ::testing::Range(0, 8));

/**
 * Forced-placement property (§3.4/Figure 4): replay every attempt's trace
 * against a shadow modulo reservation table and check, at each forced
 * placement, that (a) every resource-displaced victim truly held one of
 * the *chosen* alternative's cells at the chosen slot, (b) after evicting
 * exactly those victims the chosen alternative fits, and (c) no MRT cell
 * is ever double-booked during the whole replay.
 */
/** Replays `trace` at `ii`; adds the number of forced placements seen to
 *  `forced_out` (void return so gtest's fatal ASSERTs work inside). */
void
replayTrace(const ir::Loop& loop, const machine::MachineModel& machine,
            const graph::DepGraph& graph,
            const std::vector<sched::TraceEvent>& trace, int ii,
            int& forced_out)
{
    // START and STOP are graph vertices beyond the loop's operations;
    // they reserve nothing (empty table) but do appear in the trace.
    sched::ModuloReservationTable mrt(ii, machine.numResources(),
                                      graph.numVertices());
    std::vector<bool> placed(static_cast<std::size_t>(graph.numVertices()),
                             false);
    placed[static_cast<std::size_t>(graph.start())] = true; // empty table
    int forced = 0;
    const machine::ReservationTable empty_table;

    const auto contains = [](const std::vector<graph::VertexId>& ops,
                             graph::VertexId op) {
        return std::find(ops.begin(), ops.end(), op) != ops.end();
    };

    for (const auto& event : trace) {
        const machine::ReservationTable* chosen = &empty_table;
        if (!graph.isPseudo(event.op)) {
            const auto& alternatives =
                machine.info(loop.operation(event.op).opcode).alternatives;
            ASSERT_GE(event.alternative, 0) << loop.name();
            ASSERT_LT(event.alternative,
                      static_cast<int>(alternatives.size()))
                << loop.name();
            chosen = &alternatives[event.alternative].table;
        }
        const auto& table = *chosen;

        if (event.forced) {
            ++forced;
            for (graph::VertexId victim : event.resourceDisplaced) {
                EXPECT_TRUE(contains(event.displaced, victim))
                    << loop.name();
                ASSERT_TRUE(placed[victim]) << loop.name();
                // (a) The victim holds a cell the chosen alternative needs.
                const auto holders =
                    mrt.conflictingOps(table, event.slot);
                EXPECT_TRUE(std::find(holders.begin(), holders.end(),
                                      victim) != holders.end())
                    << loop.name() << ": op " << victim
                    << " displaced without conflicting at slot "
                    << event.slot;
                mrt.release(victim);
                placed[victim] = false;
            }
            // (b) Evicting exactly those victims freed the alternative.
            EXPECT_FALSE(mrt.conflicts(table, event.slot))
                << loop.name() << ": chosen alternative still blocked";
        }

        // (c) Conflict-free at reserve time, forced or not; reserving on
        // a conflict would double-book a cell.
        ASSERT_FALSE(mrt.conflicts(table, event.slot)) << loop.name();
        mrt.reserve(event.op, table, event.slot);
        placed[event.op] = true;

        // Dependence-displaced successors leave the table after the
        // placement (scheduleAt displaces them once `op` is in place).
        for (graph::VertexId victim : event.displaced) {
            if (contains(event.resourceDisplaced, victim))
                continue;
            ASSERT_TRUE(placed[victim]) << loop.name();
            mrt.release(victim);
            placed[victim] = false;
        }
    }
    forced_out += forced;
}

/** Schedules `loop` along the production II sequence, replaying every
 *  attempt's trace (failed attempts exercise forced placement hardest). */
void
sweepAndReplay(const ir::Loop& loop, const machine::MachineModel& machine,
               int& forced_total)
{
    const auto g = graph::buildDepGraph(loop, machine);
    const auto sccs = graph::findSccs(g);
    const auto mii = mii::computeMii(loop, machine, g, sccs);
    bool scheduled = false;
    for (int ii = mii.mii; ii < mii.mii + 40 && !scheduled; ++ii) {
        std::vector<sched::TraceEvent> trace;
        sched::IterativeScheduleOptions options;
        options.trace = &trace;
        sched::IterativeScheduler scheduler(loop, machine, g, sccs,
                                            options);
        scheduled =
            scheduler.trySchedule(ii, 2 * (loop.size() + 2)).has_value();
        replayTrace(loop, machine, g, trace, ii, forced_total);
        if (::testing::Test::HasFatalFailure())
            return;
    }
    EXPECT_TRUE(scheduled) << loop.name();
}

TEST(ForcedPlacementProperty, DisplacedVictimsConflictAndChosenAltFits)
{
    const auto machine = machine::cydra5();
    int forced_total = 0;
    for (const auto& w : workloads::kernelLibrary()) {
        sweepAndReplay(w.loop, machine, forced_total);
        if (::testing::Test::HasFatalFailure())
            return;
    }
    // Resource-saturated random loops are what actually drive FindTimeSlot
    // to fail across a whole II window (this seed deterministically
    // produces several forcing loops, so the property is non-vacuous).
    support::Rng rng(42);
    for (int k = 0; k < 40; ++k) {
        const auto loop =
            workloads::generateLoop(rng, "forced_" + std::to_string(k));
        sweepAndReplay(loop, machine, forced_total);
        if (::testing::Test::HasFatalFailure())
            return;
    }
    EXPECT_GT(forced_total, 0);
}

/**
 * RecMII agreement property on random loops: circuit enumeration and the
 * per-SCC MinDist search must produce the same bound.
 */
class RecMiiAgreementProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RecMiiAgreementProperty, CircuitsAgreeWithMinDist)
{
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 17);
    const auto machine = machine::cydra5();
    for (int k = 0; k < 25; ++k) {
        const auto loop = workloads::generateLoop(rng, "rm");
        const auto g = graph::buildDepGraph(loop, machine);
        const auto sccs = graph::findSccs(g);
        const int per_scc = mii::computeRecMiiPerScc(g, sccs, 1);
        const int circuits = mii::computeRecMiiFromCircuits(g);
        EXPECT_EQ(per_scc, circuits) << loop.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecMiiAgreementProperty,
                         ::testing::Range(0, 4));

/**
 * BudgetRatio monotonicity-ish property: a generous budget never yields a
 * worse II than the same scheduler with a tight budget.
 */
class BudgetProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BudgetProperty, LargerBudgetNeverWorsensIi)
{
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
    const auto machine = machine::cydra5();
    for (int k = 0; k < 10; ++k) {
        const auto loop = workloads::generateLoop(rng, "b");
        const auto g = graph::buildDepGraph(loop, machine);
        const auto sccs = graph::findSccs(g);
        sched::ScheduleOptions tight;
        tight.search.budgetRatio = 1.0;
        sched::ScheduleOptions generous;
        generous.search.budgetRatio = 8.0;
        const auto a = sched::schedule(loop, machine, g, sccs, tight);
        const auto b =
            sched::schedule(loop, machine, g, sccs, generous);
        EXPECT_LE(b.schedule.ii, a.schedule.ii) << loop.name();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetProperty, ::testing::Range(0, 4));

} // namespace
