#include <gtest/gtest.h>

#include <tuple>

#include "core/pipeliner.hpp"
#include "graph/graph_builder.hpp"
#include "graph/scc.hpp"
#include "machine/cydra5.hpp"
#include "machine/machines.hpp"
#include "mii/mii.hpp"
#include "mii/rec_mii.hpp"
#include "sched/verifier.hpp"
#include "sim/pipeline_simulator.hpp"
#include "sim/sequential_interpreter.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_loops.hpp"

namespace {

using namespace ims;

machine::MachineModel
machineByName(const std::string& name)
{
    if (name == "cydra5")
        return machine::cydra5();
    if (name == "clean64")
        return machine::clean64();
    if (name == "wide-vliw")
        return machine::wideVliw();
    return machine::scalarToy();
}

std::vector<std::string>
kernelNames()
{
    std::vector<std::string> names;
    for (const auto& w : workloads::kernelLibrary())
        names.push_back(w.loop.name());
    return names;
}

/**
 * Invariant sweep over (kernel, machine): every schedule the pipeliner
 * produces is verified legal, II and SL respect their lower bounds, and
 * executing the pipelined schedule is bit-identical to the sequential
 * reference.
 */
class KernelMachineProperty
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>>
{
};

TEST_P(KernelMachineProperty, ScheduleLegalAndSemanticsPreserved)
{
    const auto [kernel_name, machine_name] = GetParam();
    const auto machine = machineByName(machine_name);
    const auto w = workloads::kernelByName(kernel_name);

    core::SoftwarePipeliner pipeliner(machine);
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
    const auto& schedule = artifacts.outcome.schedule;

    // II bounds.
    EXPECT_GE(schedule.ii, artifacts.outcome.mii);
    EXPECT_GE(artifacts.outcome.mii, artifacts.outcome.resMii);

    // Legality (the pipeliner already verified; double-check here so the
    // property holds even with verify disabled).
    EXPECT_TRUE(sched::verifySchedule(w.loop, machine, artifacts.depGraph,
                                      schedule)
                    .empty());

    // Schedule length within bounds.
    EXPECT_GE(schedule.scheduleLength, artifacts.minScheduleLength);

    // Semantic equivalence at two trip counts (one barely above the stage
    // count, one comfortably larger).
    for (const int trip : {artifacts.code.kernel.stageCount + 1, 37}) {
        const auto spec = workloads::makeSimSpec(w.loop, trip, 1234);
        const auto seq = sim::runSequential(w.loop, spec);
        const auto pipe = sim::runPipelined(w.loop, schedule, spec);
        EXPECT_TRUE(sim::equivalent(seq, pipe.state)) << "trip " << trip;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllMachines, KernelMachineProperty,
    ::testing::Combine(::testing::ValuesIn(kernelNames()),
                       ::testing::Values("cydra5", "clean64", "wide-vliw",
                                         "scalar-toy")),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, std::string>>& info) {
        std::string name = std::get<0>(info.param) + "_on_" +
                           std::get<1>(info.param);
        for (auto& c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

/** Property sweep over random loops: generate, schedule, verify, run. */
class RandomLoopProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomLoopProperty, RandomLoopsScheduleVerifyAndSimulate)
{
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);

    for (int k = 0; k < 25; ++k) {
        const auto loop = workloads::generateLoop(
            rng, "prop_" + std::to_string(GetParam()) + "_" +
                     std::to_string(k));
        const auto artifacts = pipeliner.pipeline(core::PipelineRequest(loop)).artifactsOrThrow();
        EXPECT_TRUE(sched::verifySchedule(loop, machine,
                                          artifacts.depGraph,
                                          artifacts.outcome.schedule)
                        .empty())
            << loop.name();

        const auto spec = workloads::makeSimSpec(loop, 20, 99);
        const auto seq = sim::runSequential(loop, spec);
        const auto pipe =
            sim::runPipelined(loop, artifacts.outcome.schedule, spec);
        EXPECT_TRUE(sim::equivalent(seq, pipe.state)) << loop.name();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLoopProperty,
                         ::testing::Range(0, 8));

/**
 * RecMII agreement property on random loops: circuit enumeration and the
 * per-SCC MinDist search must produce the same bound.
 */
class RecMiiAgreementProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RecMiiAgreementProperty, CircuitsAgreeWithMinDist)
{
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 17);
    const auto machine = machine::cydra5();
    for (int k = 0; k < 25; ++k) {
        const auto loop = workloads::generateLoop(rng, "rm");
        const auto g = graph::buildDepGraph(loop, machine);
        const auto sccs = graph::findSccs(g);
        const int per_scc = mii::computeRecMiiPerScc(g, sccs, 1);
        const int circuits = mii::computeRecMiiFromCircuits(g);
        EXPECT_EQ(per_scc, circuits) << loop.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecMiiAgreementProperty,
                         ::testing::Range(0, 4));

/**
 * BudgetRatio monotonicity-ish property: a generous budget never yields a
 * worse II than the same scheduler with a tight budget.
 */
class BudgetProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BudgetProperty, LargerBudgetNeverWorsensIi)
{
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
    const auto machine = machine::cydra5();
    for (int k = 0; k < 10; ++k) {
        const auto loop = workloads::generateLoop(rng, "b");
        const auto g = graph::buildDepGraph(loop, machine);
        const auto sccs = graph::findSccs(g);
        sched::ModuloScheduleOptions tight;
        tight.budgetRatio = 1.0;
        sched::ModuloScheduleOptions generous;
        generous.budgetRatio = 8.0;
        const auto a = sched::moduloSchedule(loop, machine, g, sccs, tight);
        const auto b =
            sched::moduloSchedule(loop, machine, g, sccs, generous);
        EXPECT_LE(b.schedule.ii, a.schedule.ii) << loop.name();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetProperty, ::testing::Range(0, 4));

} // namespace
