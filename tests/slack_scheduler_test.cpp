#include <gtest/gtest.h>

#include "graph/graph_builder.hpp"
#include "graph/scc.hpp"
#include "machine/cydra5.hpp"
#include "machine/machines.hpp"
#include "sched/schedule.hpp"
#include "sched/verifier.hpp"
#include "sim/pipeline_simulator.hpp"
#include "sim/sequential_interpreter.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_loops.hpp"

namespace {

using namespace ims;

TEST(SlackSchedulerTest, AllKernelsScheduleVerifyAndSimulate)
{
    const auto machine = machine::cydra5();
    sched::ScheduleOptions options;
    options.strategy = sched::SchedulerStrategy::kSlack;
    options.search.budgetRatio = 6.0;
    for (const auto& w : workloads::kernelLibrary()) {
        const auto g = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(g);
        const auto outcome =
            sched::schedule(w.loop, machine, g, sccs, options);
        EXPECT_GE(outcome.schedule.ii, outcome.mii) << w.loop.name();
        const auto violations = sched::verifySchedule(
            w.loop, machine, g, outcome.schedule);
        ASSERT_TRUE(violations.empty())
            << w.loop.name() << ": " << violations.front().toString();

        const auto spec = workloads::makeSimSpec(w.loop, 25, 77);
        const auto seq = sim::runSequential(w.loop, spec);
        const auto pipe =
            sim::runPipelined(w.loop, outcome.schedule, spec);
        EXPECT_TRUE(sim::equivalent(seq, pipe.state)) << w.loop.name();
    }
}

TEST(SlackSchedulerTest, ReachesMiiOnEasyKernels)
{
    const auto machine = machine::cydra5();
    sched::ScheduleOptions options;
    options.strategy = sched::SchedulerStrategy::kSlack;
    options.search.budgetRatio = 6.0;
    for (const char* name :
         {"daxpy", "vec_copy", "init_store", "dot_raw", "tridiag"}) {
        const auto w = workloads::kernelByName(name);
        const auto g = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(g);
        const auto outcome =
            sched::schedule(w.loop, machine, g, sccs, options);
        EXPECT_EQ(outcome.schedule.ii, outcome.mii) << name;
    }
}

TEST(SlackSchedulerTest, RandomLoopsProperty)
{
    const auto machine = machine::cydra5();
    sched::ScheduleOptions options;
    options.strategy = sched::SchedulerStrategy::kSlack;
    options.search.budgetRatio = 6.0;
    support::Rng rng(424242);
    for (int k = 0; k < 40; ++k) {
        const auto loop =
            workloads::generateLoop(rng, "slack_" + std::to_string(k));
        const auto g = graph::buildDepGraph(loop, machine);
        const auto sccs = graph::findSccs(g);
        const auto outcome =
            sched::schedule(loop, machine, g, sccs, options);
        const auto violations =
            sched::verifySchedule(loop, machine, g, outcome.schedule);
        ASSERT_TRUE(violations.empty())
            << loop.name() << ": " << violations.front().toString();

        const auto spec = workloads::makeSimSpec(loop, 15, 5);
        const auto seq = sim::runSequential(loop, spec);
        const auto pipe =
            sim::runPipelined(loop, outcome.schedule, spec);
        EXPECT_TRUE(sim::equivalent(seq, pipe.state)) << loop.name();
    }
}

TEST(SlackSchedulerTest, WorksAcrossMachines)
{
    sched::ScheduleOptions options;
    options.strategy = sched::SchedulerStrategy::kSlack;
    options.search.budgetRatio = 6.0;
    for (const auto& machine :
         {machine::clean64(), machine::wideVliw(), machine::scalarToy()}) {
        const auto w = workloads::kernelByName("state_frag");
        const auto g = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(g);
        const auto outcome =
            sched::schedule(w.loop, machine, g, sccs, options);
        EXPECT_TRUE(sched::verifySchedule(w.loop, machine, g,
                                          outcome.schedule)
                        .empty())
            << machine.name();
    }
}

TEST(SlackSchedulerTest, InvalidBudgetRejected)
{
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("daxpy");
    const auto g = graph::buildDepGraph(w.loop, machine);
    const auto sccs = graph::findSccs(g);
    sched::ScheduleOptions options;
    options.strategy = sched::SchedulerStrategy::kSlack;
    options.search.budgetRatio = 0.0;
    EXPECT_THROW(sched::schedule(w.loop, machine, g, sccs, options),
                 support::Error);
}

} // namespace
