#include <gtest/gtest.h>

#include "core/pipeliner.hpp"
#include "ir/loop_builder.hpp"
#include "machine/cydra5.hpp"
#include "codegen/kernel_only.hpp"
#include "sim/memory.hpp"
#include "sim/pipeline_simulator.hpp"
#include "sim/section_executor.hpp"
#include "sim/sequential_interpreter.hpp"
#include "sim/value.hpp"
#include "support/error.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;
using ir::Opcode;

TEST(ValueTest, OpcodeSemantics)
{
    EXPECT_DOUBLE_EQ(sim::evaluate(Opcode::kAdd, {2, 3}), 5);
    EXPECT_DOUBLE_EQ(sim::evaluate(Opcode::kSub, {2, 3}), -1);
    EXPECT_DOUBLE_EQ(sim::evaluate(Opcode::kMul, {2, 3}), 6);
    EXPECT_DOUBLE_EQ(sim::evaluate(Opcode::kDiv, {6, 3}), 2);
    EXPECT_DOUBLE_EQ(sim::evaluate(Opcode::kDiv, {6, 0}), 0); // total fn
    EXPECT_DOUBLE_EQ(sim::evaluate(Opcode::kSqrt, {-9}), 3);
    EXPECT_DOUBLE_EQ(sim::evaluate(Opcode::kMin, {2, 3}), 2);
    EXPECT_DOUBLE_EQ(sim::evaluate(Opcode::kMax, {2, 3}), 3);
    EXPECT_DOUBLE_EQ(sim::evaluate(Opcode::kAbs, {-4}), 4);
    EXPECT_DOUBLE_EQ(sim::evaluate(Opcode::kCmpGt, {3, 2}), 1);
    EXPECT_DOUBLE_EQ(sim::evaluate(Opcode::kCmpGt, {2, 3}), 0);
    EXPECT_DOUBLE_EQ(sim::evaluate(Opcode::kPredSet, {1, 0}), 1);
    EXPECT_DOUBLE_EQ(sim::evaluate(Opcode::kPredClear, {}), 0);
    EXPECT_DOUBLE_EQ(sim::evaluate(Opcode::kSelect, {1, 7, 9}), 7);
    EXPECT_DOUBLE_EQ(sim::evaluate(Opcode::kSelect, {0, 7, 9}), 9);
    EXPECT_DOUBLE_EQ(sim::evaluate(Opcode::kCopy, {42}), 42);
    EXPECT_DOUBLE_EQ(sim::evaluate(Opcode::kAddrAdd, {8, 8}), 16);
    EXPECT_DOUBLE_EQ(sim::evaluate(Opcode::kAddrSub, {8, 3}), 5);
}

TEST(MemoryTest, MarginSupportsNegativeIndices)
{
    ir::LoopBuilder b("m");
    b.recurrence("ax");
    b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 3), b.imm(24)});
    b.load("x", "X", -1, b.reg("ax"));
    b.store("Y", 0, b.reg("ax"), b.reg("x"));
    b.closeLoopBackSubstituted();
    const auto loop = b.build();

    sim::Memory memory(loop, 10, 4);
    memory.write(0, -3, 7.5);
    EXPECT_DOUBLE_EQ(memory.read(0, -3), 7.5);
    EXPECT_DOUBLE_EQ(memory.read(0, 0), 0.0);
    EXPECT_THROW(memory.read(0, -5), support::Error);
}

TEST(MemoryTest, SnapshotAndEquality)
{
    ir::LoopBuilder b("m");
    b.recurrence("ax");
    b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 3), b.imm(24)});
    b.store("Y", 0, b.reg("ax"), b.imm(1.0));
    b.closeLoopBackSubstituted();
    const auto loop = b.build();

    sim::Memory a(loop, 4, 2);
    sim::Memory c(loop, 4, 2);
    EXPECT_TRUE(a == c);
    a.write(0, 1, 3.0);
    EXPECT_FALSE(a == c);
    c.write(0, 1, 3.0);
    EXPECT_TRUE(a == c);
    const auto snap = a.snapshot(0, 0, 3);
    EXPECT_DOUBLE_EQ(snap[1], 3.0);
}

TEST(SequentialTest, DaxpyComputesExactValues)
{
    const auto w = workloads::kernelByName("daxpy");
    sim::SimSpec spec;
    spec.tripCount = 5;
    spec.margin = 8;
    spec.liveIn["a"] = 2.0;
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> y = {10, 20, 30, 40, 50};
    spec.arrays["X"] = {0, x};
    spec.arrays["Y"] = {0, y};
    const auto result = sim::runSequential(w.loop, spec);
    // Find the Y array id.
    for (ir::ArrayId arr = 0; arr < w.loop.numArrays(); ++arr) {
        if (w.loop.arrays()[arr].name != "Y")
            continue;
        for (int i = 0; i < 5; ++i) {
            EXPECT_DOUBLE_EQ(result.memory.read(arr, i),
                             y[i] + 2.0 * x[i])
                << i;
        }
    }
}

TEST(SequentialTest, FirstOrderRecurrenceUsesSeed)
{
    const auto w = workloads::kernelByName("first_order_rec");
    sim::SimSpec spec;
    spec.tripCount = 3;
    spec.liveIn["a"] = 0.5;
    spec.seeds["x"] = {8.0}; // x_{-1}
    spec.arrays["B"] = {0, {1.0, 1.0, 1.0}};
    const auto result = sim::runSequential(w.loop, spec);
    // x_0 = .5*8+1 = 5; x_1 = 3.5; x_2 = 2.75.
    EXPECT_DOUBLE_EQ(result.finalRegisters.at("x"), 2.75);
}

TEST(SequentialTest, GuardFalseSkipsStoreAndZeroesDest)
{
    const auto w = workloads::kernelByName("cond_store");
    sim::SimSpec spec;
    spec.tripCount = 4;
    spec.arrays["X"] = {0, {1.0, -1.0, 2.0, -2.0}};
    spec.arrays["Y"] = {0, {9.0, 9.0, 9.0, 9.0}};
    const auto result = sim::runSequential(w.loop, spec);
    for (ir::ArrayId arr = 0; arr < w.loop.numArrays(); ++arr) {
        if (w.loop.arrays()[arr].name != "Y")
            continue;
        EXPECT_DOUBLE_EQ(result.memory.read(arr, 0), 1.0);
        EXPECT_DOUBLE_EQ(result.memory.read(arr, 1), 9.0); // kept
        EXPECT_DOUBLE_EQ(result.memory.read(arr, 2), 2.0);
        EXPECT_DOUBLE_EQ(result.memory.read(arr, 3), 9.0); // kept
    }
}

TEST(SequentialTest, MaxReduceTracksRunningMaximum)
{
    const auto w = workloads::kernelByName("max_reduce");
    sim::SimSpec spec;
    spec.tripCount = 4;
    spec.liveIn["m"] = -100.0; // seed fallback for m[-1]
    spec.arrays["X"] = {0, {3.0, 9.0, 1.0, 4.0}};
    const auto result = sim::runSequential(w.loop, spec);
    EXPECT_DOUBLE_EQ(result.finalRegisters.at("m"), 9.0);
}

TEST(SequentialTest, MemoryRecurrencePropagates)
{
    const auto w = workloads::kernelByName("mem_recurrence");
    sim::SimSpec spec;
    spec.tripCount = 3;
    spec.liveIn["r"] = 2.0;
    std::vector<double> a_init = {5.0}; // A[-1]
    spec.arrays["A"] = {-1, a_init};
    spec.arrays["B"] = {0, {1.0, 1.0, 1.0}};
    const auto result = sim::runSequential(w.loop, spec);
    // A[0] = 5*2+1 = 11; A[1] = 23; A[2] = 47.
    for (ir::ArrayId arr = 0; arr < w.loop.numArrays(); ++arr) {
        if (w.loop.arrays()[arr].name == "A") {
            EXPECT_DOUBLE_EQ(result.memory.read(arr, 0), 11.0);
            EXPECT_DOUBLE_EQ(result.memory.read(arr, 1), 23.0);
            EXPECT_DOUBLE_EQ(result.memory.read(arr, 2), 47.0);
        }
    }
}

TEST(SequentialTest, StridedAccessesReachStridedCells)
{
    const auto w = workloads::kernelByName("iccg_like");
    sim::SimSpec spec = workloads::makeSimSpec(w.loop, 6, 3);
    EXPECT_NO_THROW(sim::runSequential(w.loop, spec));
}

TEST(SequentialTest, RejectsNonTopologicalBodies)
{
    // A body reading a same-iteration value defined later in program
    // order must be diagnosed.
    ir::Loop loop("bad_order");
    const auto x = loop.addRegister({"x", false, false});
    const auto y = loop.addRegister({"y", false, false});
    const auto a = loop.addRegister({"a", false, true});
    ir::Operation first;
    first.opcode = Opcode::kCopy;
    first.dest = y;
    first.sources = {ir::Operand::makeReg(x)}; // x defined below
    loop.addOperation(first);
    ir::Operation second;
    second.opcode = Opcode::kCopy;
    second.dest = x;
    second.sources = {ir::Operand::makeReg(a)};
    loop.addOperation(second);

    sim::SimSpec spec;
    spec.tripCount = 2;
    EXPECT_THROW(sim::runSequential(loop, spec), support::Error);
}

TEST(PipelineSimTest, CyclesFollowExecutionTimeModel)
{
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("daxpy");
    core::SoftwarePipeliner pipeliner(machine);
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
    const auto spec = workloads::makeSimSpec(w.loop, 40, 7);
    const auto result =
        sim::runPipelined(w.loop, artifacts.outcome.schedule, spec);
    EXPECT_EQ(result.cycles,
              39LL * artifacts.outcome.schedule.ii +
                  artifacts.outcome.schedule.scheduleLength);
}

TEST(PipelineSimTest, MatchesSequentialOnEveryKernel)
{
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    for (const auto& w : workloads::kernelLibrary()) {
        const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
        const auto spec = workloads::makeSimSpec(w.loop, 30, 11);
        const auto seq = sim::runSequential(w.loop, spec);
        const auto pipe =
            sim::runPipelined(w.loop, artifacts.outcome.schedule, spec);
        EXPECT_TRUE(sim::equivalent(seq, pipe.state)) << w.loop.name();
    }
}

TEST(PipelineSimTest, LowTripCountsMatchSequentialEverywhere)
{
    // Low-trip-count audit: every trip count below the stage count —
    // including zero — through both pipelined execution schemas. A
    // zero-trip loop must leave the final registers EMPTY like the
    // sequential reference, not report seed values.
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    for (const char* name :
         {"daxpy", "mem_recurrence", "tridiag", "cond_store"}) {
        const auto w = workloads::kernelByName(name);
        const auto artifacts =
            pipeliner.pipeline(core::PipelineRequest(w.loop))
                .artifactsOrThrow();
        const auto kernel_only = codegen::generateKernelOnly(
            w.loop, artifacts.outcome.schedule);
        for (int trip = 0; trip < kernel_only.stageCount; ++trip) {
            const auto spec = workloads::makeSimSpec(w.loop, trip, 23);
            const auto seq = sim::runSequential(w.loop, spec);
            const auto ko = sim::runKernelOnly(w.loop, kernel_only, spec);
            EXPECT_TRUE(sim::equivalent(seq, ko))
                << name << " kernel-only trip " << trip;
            const auto pipe = sim::runPipelined(
                w.loop, artifacts.outcome.schedule, spec);
            EXPECT_TRUE(sim::equivalent(seq, pipe.state))
                << name << " pipelined trip " << trip;
        }
    }
}

TEST(PipelineSimTest, ZeroTripKernelOnlyLeavesRegistersEmpty)
{
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    const auto w = workloads::kernelByName("dot_raw");
    const auto artifacts =
        pipeliner.pipeline(core::PipelineRequest(w.loop))
            .artifactsOrThrow();
    const auto kernel_only =
        codegen::generateKernelOnly(w.loop, artifacts.outcome.schedule);
    const auto spec = workloads::makeSimSpec(w.loop, 0, 23);
    const auto ko = sim::runKernelOnly(w.loop, kernel_only, spec);
    EXPECT_TRUE(ko.finalRegisters.empty());
    EXPECT_TRUE(sim::runSequential(w.loop, spec).finalRegisters.empty());
}

TEST(PipelineSimTest, TripCountOfOneStillWorks)
{
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("daxpy");
    core::SoftwarePipeliner pipeliner(machine);
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
    const auto spec = workloads::makeSimSpec(w.loop, 1, 5);
    const auto seq = sim::runSequential(w.loop, spec);
    const auto pipe =
        sim::runPipelined(w.loop, artifacts.outcome.schedule, spec);
    EXPECT_TRUE(sim::equivalent(seq, pipe.state));
}

} // namespace
