#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "core/batch_pipeliner.hpp"
#include "machine/cydra5.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"
#include "workloads/corpus.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;

std::vector<ir::Loop>
libraryLoops()
{
    std::vector<ir::Loop> loops;
    for (const auto& w : workloads::kernelLibrary())
        loops.push_back(w.loop);
    return loops;
}

TEST(BatchPipelinerTest, PipelinesTheWholeKernelLibrary)
{
    const auto loops = libraryLoops();
    core::BatchPipeliner batch(machine::cydra5());
    const auto result = batch.run(loops);

    ASSERT_EQ(result.items.size(), loops.size());
    EXPECT_EQ(result.failures(), 0u);
    for (std::size_t i = 0; i < loops.size(); ++i) {
        EXPECT_EQ(result.items[i].name, loops[i].name()) << i;
        ASSERT_TRUE(result.items[i].result.ok()) << loops[i].name();
        EXPECT_GE(result.items[i].result.telemetry.ii,
                  result.items[i].result.telemetry.mii);
    }
}

TEST(BatchPipelinerTest, DeterministicAcrossThreadCounts)
{
    const auto loops = libraryLoops();
    const auto machine = machine::cydra5();

    const auto baseline =
        core::BatchPipeliner(machine, core::BatchOptions{}.withThreads(1))
            .run(loops);

    for (const int threads : {2, 3, 8}) {
        const auto parallel =
            core::BatchPipeliner(machine,
                                 core::BatchOptions{}.withThreads(threads))
                .run(loops);
        ASSERT_EQ(parallel.items.size(), baseline.items.size());
        for (std::size_t i = 0; i < baseline.items.size(); ++i) {
            const auto& a = baseline.items[i];
            const auto& b = parallel.items[i];
            EXPECT_EQ(a.name, b.name);
            ASSERT_TRUE(a.result.ok());
            ASSERT_TRUE(b.result.ok()) << a.name << " @" << threads;
            const auto& sa = a.result.artifacts->outcome.schedule;
            const auto& sb = b.result.artifacts->outcome.schedule;
            // Bitwise-identical schedules for any pool size.
            EXPECT_EQ(sa.ii, sb.ii) << a.name;
            EXPECT_EQ(sa.times, sb.times) << a.name;
            EXPECT_EQ(sa.alternatives, sb.alternatives) << a.name;
            EXPECT_EQ(sa.scheduleLength, sb.scheduleLength) << a.name;
            EXPECT_EQ(a.result.artifacts->registers.rotatingRegisters,
                      b.result.artifacts->registers.rotatingRegisters)
                << a.name;
        }
    }
}

TEST(BatchPipelinerTest, SameLoopOneHundredTimesIsByteIdentical)
{
    // Pool scheduling must never leak into the scheduler: 100 copies of
    // one recurrence-bearing loop, run at several pool sizes, must all
    // yield the same ScheduleResult in every field (including the step
    // and unschedule counters, which would expose any hidden
    // order-dependent state such as a reused priority workspace).
    const auto loop = workloads::kernelByName("tridiag").loop;
    const std::vector<ir::Loop> loops(100, loop);
    const auto machine = machine::cydra5();

    std::vector<sched::ScheduleResult> reference;
    for (const int threads : {1, 4, 8}) {
        const auto result =
            core::BatchPipeliner(machine,
                                 core::BatchOptions{}.withThreads(threads))
                .run(loops);
        ASSERT_EQ(result.items.size(), loops.size());
        std::vector<sched::ScheduleResult> schedules;
        for (const auto& item : result.items) {
            ASSERT_TRUE(item.result.ok()) << "@" << threads;
            schedules.push_back(item.result.artifacts->outcome.schedule);
        }
        if (reference.empty()) {
            reference = std::move(schedules);
            continue;
        }
        for (std::size_t i = 0; i < reference.size(); ++i) {
            const auto& a = reference[i];
            const auto& b = schedules[i];
            EXPECT_EQ(a.ii, b.ii) << i << " @" << threads;
            EXPECT_EQ(a.times, b.times) << i << " @" << threads;
            EXPECT_EQ(a.alternatives, b.alternatives)
                << i << " @" << threads;
            EXPECT_EQ(a.scheduleLength, b.scheduleLength)
                << i << " @" << threads;
            EXPECT_EQ(a.stepsUsed, b.stepsUsed) << i << " @" << threads;
            EXPECT_EQ(a.unschedules, b.unschedules)
                << i << " @" << threads;
        }
    }
    // Copies within one run are identical too.
    for (std::size_t i = 1; i < reference.size(); ++i) {
        EXPECT_EQ(reference[i].times, reference[0].times) << i;
        EXPECT_EQ(reference[i].unschedules, reference[0].unschedules) << i;
    }
}

TEST(BatchPipelinerTest, WorkStealingRunsEveryIndexExactlyOnce)
{
    constexpr std::size_t kCount = 257; // not a multiple of the pool size
    std::vector<std::atomic<int>> runs(kCount);
    support::WorkStealingStats stats;
    support::workStealingFor(
        kCount, 4, [&](std::size_t index) { ++runs[index]; }, &stats);
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(runs[i].load(), 1) << i;
}

TEST(BatchPipelinerTest, WorkStealingRescuesABlockedSlice)
{
    // Deterministic stealing proof: item 0 blocks until every other item
    // has completed. Its owner therefore cannot reach item 1 of its own
    // slice, so the pool can only terminate if another worker *steals*
    // item 1 — with static slot assignment (the pre-stealing driver)
    // this test would deadlock rather than fail.
    constexpr std::size_t kCount = 4;
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t done = 0;
    support::WorkStealingStats stats;
    support::workStealingFor(
        kCount, 2,
        [&](std::size_t index) {
            std::unique_lock<std::mutex> lock(mutex);
            if (index == 0) {
                done_cv.wait(lock, [&] { return done == kCount - 1; });
            } else {
                ++done;
                done_cv.notify_all();
            }
        },
        &stats);
    EXPECT_GE(stats.steals, 1u);
}

TEST(BatchPipelinerTest, StealCountIsReportedAndZeroWhenSingleThreaded)
{
    const auto loops = libraryLoops();
    const auto machine = machine::cydra5();
    const auto serial =
        core::BatchPipeliner(machine, core::BatchOptions{}.withThreads(1))
            .run(loops);
    EXPECT_EQ(serial.workSteals, 0u);
    // Parallel runs may or may not steal (timing), but must report the
    // counter without perturbing results — DeterministicAcrossThreadCounts
    // above pins the results themselves.
    const auto parallel =
        core::BatchPipeliner(machine, core::BatchOptions{}.withThreads(8))
            .run(loops);
    EXPECT_EQ(parallel.failures(), 0u);
}

TEST(BatchPipelinerTest, OneBadLoopDoesNotSinkTheBatch)
{
    const auto library = workloads::kernelLibrary();
    std::vector<ir::Loop> loops;
    for (int i = 0; i < 10; ++i)
        loops.push_back(library[i].loop);

    std::vector<core::PipelineRequest> requests;
    for (const auto& loop : loops)
        requests.emplace_back(loop);
    // Sabotage request 4: non-DSA mode rejects the distance>1 operands
    // every library kernel's back-substituted counter uses.
    requests[4].withOptions(core::PipelinerOptions{}.withDsaForm(false));

    core::BatchPipeliner batch(machine::cydra5(),
                               core::BatchOptions{}.withThreads(4));
    const auto result = batch.run(requests);

    ASSERT_EQ(result.items.size(), 10u);
    EXPECT_EQ(result.failures(), 1u);
    EXPECT_EQ(result.successes(), 9u);
    EXPECT_FALSE(result.items[4].result.ok());
    ASSERT_FALSE(result.items[4].result.diagnostics.empty());
    EXPECT_EQ(result.items[4].result.diagnostics[0].severity,
              core::Diagnostic::Severity::kError);
    EXPECT_EQ(result.items[4].name, loops[4].name());
    for (const std::size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 7u, 8u, 9u})
        EXPECT_TRUE(result.items[i].result.ok()) << i;
}

TEST(BatchPipelinerTest, SummaryTableAggregatesDistributions)
{
    const auto loops = libraryLoops();
    core::BatchPipeliner batch(machine::cydra5(),
                               core::BatchOptions{}.withThreads(2));
    const auto result = batch.run(loops);

    const std::string summary = result.summaryTable();
    EXPECT_NE(summary.find("II / MII"), std::string::npos);
    EXPECT_NE(summary.find("candidate IIs attempted"), std::string::npos);
    EXPECT_NE(summary.find("wall ms per loop"), std::string::npos);
    EXPECT_NE(summary.find(std::to_string(loops.size())),
              std::string::npos);
}

TEST(BatchPipelinerTest, TelemetryJsonIsAParsableArray)
{
    std::vector<ir::Loop> loops;
    loops.push_back(workloads::kernelByName("daxpy").loop);
    loops.push_back(workloads::kernelByName("tridiag").loop);
    core::BatchPipeliner batch(machine::cydra5());
    const auto result = batch.run(loops);

    const std::string json = result.telemetryJson();
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
    // Each element round-trips through the single-record parser.
    for (const auto& item : result.items) {
        const auto reparsed =
            support::parseTelemetryJson(item.result.telemetry.toJson());
        EXPECT_EQ(reparsed.loop, item.name);
        EXPECT_EQ(reparsed.ii, item.result.telemetry.ii);
    }
}

TEST(BatchPipelinerTest, DefaultThreadCountRuns)
{
    std::vector<ir::Loop> loops;
    loops.push_back(workloads::kernelByName("daxpy").loop);
    core::BatchPipeliner batch(machine::cydra5());
    EXPECT_EQ(batch.options().threads, 0);
    const auto result = batch.run(loops);
    EXPECT_EQ(result.failures(), 0u);
    EXPECT_GE(result.threadsUsed, 1);
    EXPECT_GT(result.wallSeconds, 0.0);
}

TEST(BatchPipelinerTest, EmptyBatchIsFine)
{
    core::BatchPipeliner batch(machine::cydra5());
    const auto result = batch.run(std::vector<ir::Loop>{});
    EXPECT_TRUE(result.items.empty());
    EXPECT_EQ(result.failures(), 0u);
    EXPECT_NE(result.summaryTable().find("0/0"), std::string::npos);
}

TEST(BatchPipelinerTest, MatchesSingleLoopPipeliner)
{
    // The batch driver must produce exactly what one-at-a-time calls do.
    const auto loops = libraryLoops();
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner single(machine);
    core::BatchPipeliner batch(machine,
                               core::BatchOptions{}.withThreads(3));
    const auto result = batch.run(loops);
    ASSERT_EQ(result.items.size(), loops.size());
    for (std::size_t i = 0; i < loops.size(); ++i) {
        const auto one = single.pipeline(core::PipelineRequest(loops[i]));
        ASSERT_TRUE(one.ok());
        ASSERT_TRUE(result.items[i].result.ok());
        EXPECT_EQ(one.artifacts->outcome.schedule.times,
                  result.items[i].result.artifacts->outcome.schedule.times)
            << loops[i].name();
    }
}

} // namespace
