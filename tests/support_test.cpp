#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"
#include "support/regression.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace ims::support;

TEST(StatsTest, MeanAndMedianOddSample)
{
    std::vector<double> samples = {3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(mean(samples), 2.0);
    EXPECT_DOUBLE_EQ(median(samples), 2.0);
}

TEST(StatsTest, MedianEvenSampleAveragesMiddlePair)
{
    std::vector<double> samples = {4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(median(samples), 2.5);
}

TEST(StatsTest, SummarizeMatchesPaperTableShape)
{
    // A skewed distribution like Table 3's rows: many minimum values plus
    // a long tail.
    std::vector<double> samples = {1, 1, 1, 1, 1, 1, 2, 3, 10, 50};
    const DistributionStats stats = summarize(samples, 1.0);
    EXPECT_DOUBLE_EQ(stats.minPossible, 1.0);
    EXPECT_DOUBLE_EQ(stats.freqOfMinPossible, 0.6);
    EXPECT_DOUBLE_EQ(stats.median, 1.0);
    EXPECT_DOUBLE_EQ(stats.mean, 7.1);
    EXPECT_DOUBLE_EQ(stats.maximum, 50.0);
    EXPECT_EQ(stats.count, 10u);
}

TEST(StatsTest, FreqOfMinCountsOnlyExactMinimum)
{
    std::vector<double> samples = {0.0, 0.0, 1.0, 2.0};
    const DistributionStats stats = summarize(samples, 0.0);
    EXPECT_DOUBLE_EQ(stats.freqOfMinPossible, 0.5);
}

TEST(StatsTest, FractionAtMost)
{
    std::vector<double> samples = {0, 5, 10, 20, 40};
    EXPECT_DOUBLE_EQ(fractionAtMost(samples, 10.0), 0.6);
    EXPECT_DOUBLE_EQ(fractionAtMost(samples, 100.0), 1.0);
    EXPECT_DOUBLE_EQ(fractionAtMost(samples, -1.0), 0.0);
}

TEST(RegressionTest, ProportionalFitRecoversSlope)
{
    std::vector<double> x, y;
    for (int i = 1; i <= 50; ++i) {
        x.push_back(i);
        y.push_back(3.0036 * i);
    }
    const PolynomialFit fit = fitProportional(x, y);
    EXPECT_NEAR(fit.coefficients[1], 3.0036, 1e-9);
    EXPECT_NEAR(fit.residualStdDev, 0.0, 1e-9);
}

TEST(RegressionTest, LinearFitRecoversInterceptAndSlope)
{
    std::vector<double> x, y;
    for (int i = 0; i < 20; ++i) {
        x.push_back(i);
        y.push_back(11.9133 * i + 3.0474);
    }
    const PolynomialFit fit = fitLinear(x, y);
    EXPECT_NEAR(fit.coefficients[0], 3.0474, 1e-6);
    EXPECT_NEAR(fit.coefficients[1], 11.9133, 1e-6);
}

TEST(RegressionTest, QuadraticFitRecoversPaperStyleCoefficients)
{
    // The FindTimeSlot counter fit of Table 4: 0.0587N^2 + 0.2001N + 0.5.
    std::vector<double> x, y;
    for (int i = 4; i < 160; i += 3) {
        x.push_back(i);
        y.push_back(0.0587 * i * i + 0.2001 * i + 0.5);
    }
    const PolynomialFit fit = fitPolynomial(x, y, 2);
    EXPECT_NEAR(fit.coefficients[2], 0.0587, 1e-6);
    EXPECT_NEAR(fit.coefficients[1], 0.2001, 1e-4);
    EXPECT_NEAR(fit.coefficients[0], 0.5, 1e-3);
}

TEST(RegressionTest, ToStringRendersDescendingPowers)
{
    PolynomialFit fit;
    fit.coefficients = {0.5, 0.2, 0.06};
    EXPECT_EQ(fit.toString("N"), "0.0600N^2 + 0.2000N + 0.5000");
}

TEST(RegressionTest, EvaluateMatchesPolynomial)
{
    PolynomialFit fit;
    fit.coefficients = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(fit.evaluate(2.0), 1.0 + 4.0 + 12.0);
}

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, UniformIntStaysInRange)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const int v = rng.uniformInt(3, 9);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 9);
    }
}

TEST(RngTest, UniformRealInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(RngTest, WeightedIndexRespectsZeroWeights)
{
    Rng rng(17);
    for (int i = 0; i < 200; ++i) {
        const std::size_t pick = rng.weightedIndex({0.0, 1.0, 0.0});
        EXPECT_EQ(pick, 1u);
    }
}

TEST(RngTest, BernoulliExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(ErrorTest, CheckThrowsWithMessage)
{
    EXPECT_NO_THROW(check(true, "fine"));
    try {
        check(false, "broken widget");
        FAIL() << "check(false) must throw";
    } catch (const Error& e) {
        EXPECT_STREQ(e.what(), "broken widget");
    }
}

TEST(TableTest, RendersHeaderRuleAndRows)
{
    TextTable table("demo");
    table.addHeader({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer-name", "2"});
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find("longer-name"), std::string::npos);
    EXPECT_NE(text.find("| name"), std::string::npos);
}

TEST(TableTest, FormatDoublePrecision)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

} // namespace
