#include <gtest/gtest.h>

#include "ir/parser.hpp"
#include "support/error.hpp"

namespace {

using namespace ims;

const char* kDaxpyText = R"(
; daxpy: y[i] += a * x[i]
loop daxpy
livein a
recurrence ax
ax = aadd ax[3], #24
xv = load ax @ X 0
yv = load ax @ Y 0
t  = mul a, xv
s  = add t, yv
_  = store ax, s @ Y 0
recurrence n
n  = asub n[3], #3
_  = branch n
)";

TEST(ParserTest, ParsesDaxpy)
{
    const ir::Loop loop = ir::parseLoop(kDaxpyText);
    EXPECT_EQ(loop.name(), "daxpy");
    EXPECT_EQ(loop.size(), 8);
    EXPECT_EQ(loop.numArrays(), 2);
    EXPECT_EQ(loop.maxDistance(), 3);
    EXPECT_NO_THROW(loop.validate());
}

TEST(ParserTest, ParsesGuardedOperations)
{
    const char* text = R"(
loop guarded
recurrence ax
ax = aadd ax[3], #24
x = load ax @ X 0
p = predset x, #0
_ = store ax, x @ Y 0 if p
recurrence n
n = asub n[3], #3
_ = branch n
)";
    const ir::Loop loop = ir::parseLoop(text);
    EXPECT_EQ(loop.size(), 6);
    bool found_guard = false;
    for (const auto& op : loop.operations())
        found_guard = found_guard || op.guard.has_value();
    EXPECT_TRUE(found_guard);
}

TEST(ParserTest, ParsesGuardWithDistance)
{
    const char* text = R"(
loop g2
predicate p
recurrence ax
ax = aadd ax[3], #24
_ = store ax, #1 @ Y 0 if p[2]
recurrence n
n = asub n[3], #3
_ = branch n
)";
    const ir::Loop loop = ir::parseLoop(text);
    bool checked = false;
    for (const auto& op : loop.operations()) {
        if (op.guard) {
            EXPECT_EQ(op.guard->distance, 2);
            checked = true;
        }
    }
    EXPECT_TRUE(checked);
}

TEST(ParserTest, ImmediateOperands)
{
    const char* text = R"(
loop imms
livein a
t = add a, #-2.5
recurrence n
n = asub n[3], #3
_ = branch n
)";
    const ir::Loop loop = ir::parseLoop(text);
    const auto& op = loop.operation(0);
    ASSERT_EQ(op.sources.size(), 2u);
    EXPECT_FALSE(op.sources[1].isRegister());
    EXPECT_DOUBLE_EQ(op.sources[1].immediate, -2.5);
}

TEST(ParserTest, ErrorsCarryLineNumbers)
{
    const char* text = "loop t\nx = bogus a, b\n";
    try {
        ir::parseLoop(text);
        FAIL() << "must throw";
    } catch (const support::Error& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
    }
}

TEST(ParserTest, MissingLoopDirective)
{
    EXPECT_THROW(ir::parseLoop("x = add a, b\n"), support::Error);
}

TEST(ParserTest, EmptyTextRejected)
{
    EXPECT_THROW(ir::parseLoop("\n# nothing\n"), support::Error);
}

TEST(ParserTest, LoadWithoutMemRefRejected)
{
    const char* text = R"(
loop t
livein a
x = load a
)";
    EXPECT_THROW(ir::parseLoop(text), support::Error);
}

TEST(ParserTest, UndefinedOperandRejectedWithLine)
{
    const char* text = "loop t\nx = add ghost, #1\n";
    try {
        ir::parseLoop(text);
        FAIL() << "must throw";
    } catch (const support::Error& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(ParserTest, BadDistanceRejected)
{
    const char* text = "loop t\nlivein a\nx = copy a[zz]\n";
    EXPECT_THROW(ir::parseLoop(text), support::Error);
}

TEST(ParserTest, StridedMemoryReference)
{
    const char* text = R"(
loop strided
recurrence ax
ax = aadd ax[3], #24
x = load ax @ X 1 2
_ = store ax, x @ Y 0
recurrence n
n = asub n[3], #3
_ = branch n
)";
    const ir::Loop loop = ir::parseLoop(text);
    const auto& load = loop.operation(1);
    ASSERT_TRUE(load.memRef.has_value());
    EXPECT_EQ(load.memRef->offset, 1);
    EXPECT_EQ(load.memRef->stride, 2);
    const auto& store = loop.operation(2);
    EXPECT_EQ(store.memRef->stride, 1);
}

TEST(ParserTest, MalformedMemRefRejected)
{
    const char* text = "loop t\nlivein a\nx = load a @ X\n";
    EXPECT_THROW(ir::parseLoop(text), support::Error);
}

} // namespace
