#include <gtest/gtest.h>

#include "graph/graph_builder.hpp"
#include "graph/scc.hpp"
#include "machine/cydra5.hpp"
#include "mii/min_dist.hpp"
#include "mii/mii.hpp"
#include "sched/height_r.hpp"
#include "support/error.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;
using graph::DepEdge;
using graph::DepGraph;
using graph::DepKind;

DepEdge
edge(int from, int to, int delay, int distance, DepKind kind = DepKind::kFlow)
{
    DepEdge e;
    e.from = from;
    e.to = to;
    e.kind = kind;
    e.delay = delay;
    e.distance = distance;
    return e;
}

/** Add the START/STOP pseudo edges the builder would create. */
void
addPseudo(DepGraph& g, const std::vector<int>& latencies)
{
    for (int op = 0; op < g.numOps(); ++op) {
        g.addEdge(edge(g.start(), op, 0, 0, DepKind::kPseudo));
        g.addEdge(edge(op, g.stop(), latencies[op], 0, DepKind::kPseudo));
    }
}

TEST(HeightRTest, ChainHeightsAreSuffixDelays)
{
    // 0 ->(4) 1 ->(5) 2, latencies 4,5,2.
    DepGraph g(3);
    g.addEdge(edge(0, 1, 4, 0));
    g.addEdge(edge(1, 2, 5, 0));
    addPseudo(g, {4, 5, 2});
    const auto sccs = graph::findSccs(g);
    const auto h = sched::computeHeightR(g, sccs, 1);
    EXPECT_EQ(h[g.stop()], 0);
    EXPECT_EQ(h[2], 2);       // just its own latency to STOP
    EXPECT_EQ(h[1], 7);       // 5 + h[2]
    EXPECT_EQ(h[0], 11);      // 4 + h[1]
    EXPECT_EQ(h[g.start()], 11);
}

TEST(HeightRTest, InterIterationEdgesSubtractIiTimesDistance)
{
    // P -> Q with distance 2: HeightR(P) = H(Q) + delay - II*2.
    DepGraph g(2);
    g.addEdge(edge(0, 1, 10, 2));
    addPseudo(g, {1, 1});
    const auto sccs = graph::findSccs(g);
    const auto h = sched::computeHeightR(g, sccs, 3);
    EXPECT_EQ(h[1], 1);
    // max(own latency 1, 1 + 10 - 6 = 5).
    EXPECT_EQ(h[0], 5);
}

TEST(HeightRTest, RecurrenceFixedPointConverges)
{
    // Two-op circuit with total delay 9, distance 1, at II = 9 (tight).
    DepGraph g(2);
    g.addEdge(edge(0, 1, 5, 0));
    g.addEdge(edge(1, 0, 4, 1));
    addPseudo(g, {5, 4});
    const auto sccs = graph::findSccs(g);
    const auto h = sched::computeHeightR(g, sccs, 9);
    // h[1] = max(4, h[0] + 4 - 9); h[0] = max(5, h[1] + 5).
    // Fixed point: h[1] = 4, h[0] = 9? check: h[1] = max(4, 9-5)=4. Yes.
    EXPECT_EQ(h[1], 4);
    EXPECT_EQ(h[0], 9);
}

TEST(HeightRTest, PositiveCycleDetected)
{
    DepGraph g(2);
    g.addEdge(edge(0, 1, 5, 0));
    g.addEdge(edge(1, 0, 4, 1));
    addPseudo(g, {5, 4});
    const auto sccs = graph::findSccs(g);
    // II = 8 < RecMII = 9: the recurrence has positive weight.
    EXPECT_THROW(sched::computeHeightR(g, sccs, 8), support::Error);
}

TEST(HeightRTest, MatchesMinDistToStopOnEveryKernel)
{
    // §3.2: "If the MinDist matrix for the entire dependence graph has
    // been computed, HeightR(P) is directly available as
    // MinDist[P, STOP]" — the iterative computation must agree.
    const auto machine = machine::cydra5();
    for (const auto& w : workloads::kernelLibrary()) {
        const auto g = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(g);
        const auto mii = mii::computeMii(w.loop, machine, g, sccs);
        for (int ii : {mii.mii, mii.mii + 1, mii.mii + 7}) {
            const auto h = sched::computeHeightR(g, sccs, ii);
            const mii::MinDistMatrix dist(g, ii);
            for (int v = 0; v < g.numVertices(); ++v) {
                if (v == g.stop())
                    continue; // MinDist[STOP,STOP] is -inf by definition
                EXPECT_EQ(h[v], dist.atVertex(v, g.stop()))
                    << w.loop.name() << " II=" << ii << " v=" << v;
            }
        }
    }
}

TEST(HeightRTest, TopologicalPropertyForAcyclicLoops)
{
    // For a vectorizable loop at II >= MII, every distance-0 edge P -> Q
    // satisfies HeightR(P) >= HeightR(Q) + delay, so scheduling in height
    // order is a topological order (the property §3.2 credits HeightR
    // with).
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("hydro_frag");
    const auto g = graph::buildDepGraph(w.loop, machine);
    const auto sccs = graph::findSccs(g);
    const auto h = sched::computeHeightR(g, sccs, 5);
    for (const auto& e : g.edges()) {
        if (e.distance == 0)
            EXPECT_GE(h[e.from], h[e.to] + e.delay);
    }
}

TEST(AcyclicHeightTest, IgnoresInterIterationEdges)
{
    DepGraph g(2);
    g.addEdge(edge(0, 1, 4, 0));
    g.addEdge(edge(1, 0, 50, 1)); // ignored (distance 1)
    addPseudo(g, {4, 1});
    const auto h = sched::computeAcyclicHeight(g);
    EXPECT_EQ(h[1], 1);
    EXPECT_EQ(h[0], 5);
    EXPECT_EQ(h[g.stop()], 0);
    EXPECT_EQ(h[g.start()], 5);
}

TEST(AcyclicHeightTest, ZeroDistanceCycleRejected)
{
    DepGraph g(2);
    g.addEdge(edge(0, 1, 1, 0));
    g.addEdge(edge(1, 0, 1, 0));
    addPseudo(g, {1, 1});
    EXPECT_THROW(sched::computeAcyclicHeight(g), support::Error);
}

} // namespace
