/**
 * @file
 * Tests for the feedback-guided II search: strategy mechanics with
 * synthetic attempts/probes, bit-identity of the winning schedule
 * against the linear search (kernel corpus + fuzz loops, iterative and
 * slack backends, thread counts that must be ignored), the soundness
 * property that every skipped candidate II is confirmed infeasible by
 * the exact full-loop backend, AttemptFeedback population by the
 * schedulers, accounting of skipped candidates, and the options-codec
 * normalization that lets feedback requests share cache lines with
 * linear ones.
 */
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/pipeliner.hpp"
#include "graph/graph_builder.hpp"
#include "graph/scc.hpp"
#include "ir/loop_builder.hpp"
#include "ir/printer.hpp"
#include "machine/cydra5.hpp"
#include "machine/machine_builder.hpp"
#include "machine/machines.hpp"
#include "sched/exact_scheduler.hpp"
#include "sched/feedback_probe.hpp"
#include "sched/ii_search.hpp"
#include "sched/schedule.hpp"
#include "service/options_codec.hpp"
#include "service/schedule_service.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_loops.hpp"

namespace {

using namespace ims;
using ir::Opcode;

// ---------------------------------------------------------------------------
// The provable-gap workload ("gapster"): kMul's only reservation
// alternative uses the sparse resource at times 0 and C, so it
// modulo-self-collides — and the loop is provably infeasible — at every
// II dividing C. An m-operation kAdd recurrence with distance d pins the
// MII below those gaps, so the linear search must wade through candidate
// IIs the feedback probe can skip with a proof.

machine::MachineModel
gapsterMachine(int c)
{
    machine::MachineBuilder b("gapster");
    b.addResource("src_bus");
    b.addResource("alu0");
    b.addResource("alu1");
    b.addResource("sparse");
    b.addResource("mem");
    {
        machine::ReservationTable t0, t1;
        t0.addUse(0, 0);
        t0.addUse(1, 1);
        t1.addUse(0, 0);
        t1.addUse(1, 2);
        auto cfg = b.opcode(Opcode::kAdd, 4);
        cfg.alternative("a0", t0);
        cfg.alternative("a1", t1);
    }
    {
        machine::ReservationTable t;
        t.addUse(0, 3);
        t.addUse(c, 3);
        auto cfg = b.opcode(Opcode::kMul, 3);
        cfg.alternative("m", t);
    }
    for (int i = 0; i < ir::kNumRealOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        if (op == Opcode::kAdd || op == Opcode::kMul)
            continue;
        machine::ReservationTable t;
        t.addUse(0, 4);
        auto cfg = b.opcode(op, op == Opcode::kLoad ? 2 : 1);
        cfg.alternative("s", t);
    }
    return b.build();
}

/** m-add recurrence of distance d, one kMul (the gap op), two loads. */
ir::Loop
gapsterLoop(int m, int d)
{
    ir::LoopBuilder b("gap");
    b.recurrence("c");
    b.op(Opcode::kAdd, "t0", {b.reg("c", d), b.imm(1)});
    for (int i = 1; i < m - 1; ++i) {
        const std::string dest = "t" + std::to_string(i);
        const std::string src = "t" + std::to_string(i - 1);
        b.op(Opcode::kAdd, dest, {b.reg(src), b.imm(1)});
    }
    const std::string last = "t" + std::to_string(m - 2);
    b.op(Opcode::kAdd, "c", {b.reg(last), b.imm(1)});
    b.liveIn("x");
    b.op(Opcode::kMul, "p", {b.reg("x"), b.imm(3)});
    b.load("f0", "A", 0, b.reg("x"));
    b.load("f1", "A", 1, b.reg("x"));
    b.closeLoop();
    return b.build();
}

/** Index of the kMul (gap) operation in gapsterLoop. */
graph::VertexId
gapOpIndex(const ir::Loop& loop)
{
    for (int i = 0; i < loop.size(); ++i)
        if (loop.operation(i).opcode == Opcode::kMul)
            return i;
    ADD_FAILURE() << "gapster loop has no kMul";
    return -1;
}

// ---------------------------------------------------------------------------
// Naming, validation, worker planning.

TEST(FeedbackSearchTest, KindNameRoundTrips)
{
    EXPECT_EQ(sched::iiSearchKindName(sched::IiSearchKind::kFeedback),
              "feedback");
    EXPECT_EQ(sched::iiSearchKindByName("feedback"),
              sched::IiSearchKind::kFeedback);

    const auto strategy = sched::makeIiSearchStrategy(
        sched::IiSearchOptions{}.withKind(sched::IiSearchKind::kFeedback));
    EXPECT_EQ(strategy->name(), "feedback");
    // Skip decisions depend on the full attempt history, so the strategy
    // is single-worker regardless of the requested thread count.
    EXPECT_EQ(strategy->plannedWorkers(100), 1);
}

TEST(FeedbackSearchTest, MakeStrategyRejectsBadFeedbackKnobs)
{
    EXPECT_THROW(sched::makeIiSearchStrategy(
                     sched::IiSearchOptions{}
                         .withKind(sched::IiSearchKind::kFeedback)
                         .withFeedbackSubgraphCap(0)),
                 support::Error);
    EXPECT_THROW(sched::makeIiSearchStrategy(
                     sched::IiSearchOptions{}
                         .withKind(sched::IiSearchKind::kFeedback)
                         .withFeedbackProbeBudget(0)),
                 support::Error);
}

// ---------------------------------------------------------------------------
// Strategy mechanics with synthetic attempts and probes.

/** Fails below `first_feasible` with a conclusive feedback report. */
sched::IiAttemptOutcome
fakeAttempt(int ii, int first_feasible)
{
    sched::IiAttemptOutcome out; // status defaults to kBudgetExhausted
    out.counters.scheduleSteps = 10; // constant per-attempt delta
    out.feedback.ii = ii;
    out.feedback.status = out.status;
    out.feedback.displacements.push_back({0, 5});
    if (ii >= first_feasible) {
        sched::ScheduleResult result;
        result.ii = ii;
        result.stepsUsed = 7;
        out.schedule = result;
        out.status = sched::AttemptStatus::kScheduled;
    }
    return out;
}

TEST(FeedbackSearchTest, ProbeProvenCandidatesAreSkipped)
{
    const auto strategy = sched::makeIiSearchStrategy(
        sched::IiSearchOptions{}.withKind(sched::IiSearchKind::kFeedback));

    // The probe sees (candidate II, latest *attempted* failure's report):
    // a skip must not advance the report the next probe call receives.
    std::vector<std::pair<int, int>> probed;
    const auto probe = [&](int ii, const sched::AttemptFeedback& feedback) {
        probed.emplace_back(ii, feedback.ii);
        return ii == 5 || ii == 7;
    };

    const auto result = strategy->search(
        3, 40,
        [&](int ii, int worker, const support::CancellationToken&) {
            EXPECT_EQ(worker, 0);
            return fakeAttempt(ii, /*first_feasible=*/10);
        },
        probe);

    ASSERT_TRUE(result.schedule.has_value());
    EXPECT_EQ(result.schedule->ii, 10);
    // The deterministic prefix is the full linear range 3..10; 5 and 7
    // were skipped inside it.
    EXPECT_EQ(result.searchedIis, 8);
    EXPECT_EQ(result.skippedIis, 2);
    EXPECT_EQ(result.attemptsStarted, 6);
    EXPECT_EQ(result.attemptsWasted, 0);
    EXPECT_EQ(result.workers, 1);
    // Counters fold attempted candidates only: 3,4,6,8,9,10.
    EXPECT_EQ(result.counters.scheduleSteps, 6u * 10u);

    ASSERT_EQ(result.records.size(), 8u);
    for (int i = 0; i < 8; ++i) {
        const auto& record = result.records[i];
        EXPECT_EQ(record.ii, 3 + i);
        EXPECT_EQ(record.skipped, record.ii == 5 || record.ii == 7);
        EXPECT_EQ(record.feasible, record.ii == 10);
        if (record.skipped) {
            EXPECT_EQ(record.status, sched::AttemptStatus::kInfeasible);
        }
    }

    // No probe before the first attempt (nothing to mine yet); after a
    // skip the previous attempted report is re-used (5 and 6 both see
    // the II-4 report, 7 and 8 both see the II-6 report).
    const std::vector<std::pair<int, int>> expected_probes = {
        {4, 3}, {5, 4}, {6, 4}, {7, 6}, {8, 6}, {9, 8}, {10, 9}};
    EXPECT_EQ(probed, expected_probes);
}

TEST(FeedbackSearchTest, InconclusiveFeedbackNeverConsultsTheProbe)
{
    const auto strategy = sched::makeIiSearchStrategy(
        sched::IiSearchOptions{}.withKind(sched::IiSearchKind::kFeedback));
    int probes = 0;
    const auto result = strategy->search(
        3, 40,
        [&](int ii, int, const support::CancellationToken&) {
            auto out = fakeAttempt(ii, /*first_feasible=*/6);
            out.feedback.clear(); // nothing usable to mine
            return out;
        },
        [&](int, const sched::AttemptFeedback&) {
            ++probes;
            return true;
        });
    ASSERT_TRUE(result.schedule.has_value());
    EXPECT_EQ(result.schedule->ii, 6);
    EXPECT_EQ(probes, 0);
    EXPECT_EQ(result.skippedIis, 0);
    EXPECT_EQ(result.attemptsStarted, 4);
}

TEST(FeedbackSearchTest, SkippingCanBeDisabled)
{
    // withFeedbackSkipInfeasible(false) must reduce to the plain linear
    // walk even when a probe is supplied and would prove everything.
    const auto strategy = sched::makeIiSearchStrategy(
        sched::IiSearchOptions{}
            .withKind(sched::IiSearchKind::kFeedback)
            .withFeedbackSkipInfeasible(false));
    int probes = 0;
    const auto result = strategy->search(
        3, 40,
        [&](int ii, int, const support::CancellationToken&) {
            return fakeAttempt(ii, /*first_feasible=*/6);
        },
        [&](int, const sched::AttemptFeedback&) {
            ++probes;
            return true;
        });
    ASSERT_TRUE(result.schedule.has_value());
    EXPECT_EQ(result.schedule->ii, 6);
    EXPECT_EQ(probes, 0);
    EXPECT_EQ(result.skippedIis, 0);
    EXPECT_EQ(result.attemptsStarted, 4);
    EXPECT_EQ(result.counters.scheduleSteps, 4u * 10u);
}

// ---------------------------------------------------------------------------
// Bit-identity of the feedback search against linear on real problems.

/**
 * The feedback-search identity claim: the winner, the winning schedule
 * and the MII facts equal linear's exactly; the records cover the same
 * candidate range with the same per-II verdicts, except that feedback
 * may mark a *failed* candidate as skipped (proven infeasible without an
 * attempt). When nothing was skipped the outcomes — accounting
 * included — must be indistinguishable.
 */
void
expectFeedbackMatchesLinear(const sched::ModuloScheduleOutcome& linear,
                            const sched::ModuloScheduleOutcome& feedback,
                            const std::string& context)
{
    EXPECT_EQ(feedback.search.strategy, "feedback") << context;
    EXPECT_EQ(feedback.search.workers, 1) << context;

    EXPECT_EQ(feedback.schedule.ii, linear.schedule.ii) << context;
    EXPECT_EQ(feedback.schedule.times, linear.schedule.times) << context;
    EXPECT_EQ(feedback.schedule.alternatives, linear.schedule.alternatives)
        << context;
    EXPECT_EQ(feedback.schedule.scheduleLength,
              linear.schedule.scheduleLength)
        << context;
    EXPECT_EQ(feedback.schedule.stepsUsed, linear.schedule.stepsUsed)
        << context;
    EXPECT_EQ(feedback.schedule.unschedules, linear.schedule.unschedules)
        << context;
    EXPECT_EQ(feedback.resMii, linear.resMii) << context;
    EXPECT_EQ(feedback.mii, linear.mii) << context;
    EXPECT_EQ(feedback.attempts, linear.attempts) << context;
    EXPECT_EQ(feedback.budget, linear.budget) << context;

    ASSERT_EQ(feedback.search.records.size(), linear.search.records.size())
        << context;
    int skipped = 0;
    for (std::size_t i = 0; i < linear.search.records.size(); ++i) {
        const auto& l = linear.search.records[i];
        const auto& f = feedback.search.records[i];
        EXPECT_EQ(f.ii, l.ii) << context;
        EXPECT_FALSE(l.skipped) << context;
        if (f.skipped) {
            ++skipped;
            // A skip is only sound on a candidate linear also failed.
            EXPECT_FALSE(l.feasible) << context << " ii=" << f.ii;
            EXPECT_FALSE(f.feasible) << context << " ii=" << f.ii;
            EXPECT_EQ(f.status, sched::AttemptStatus::kInfeasible)
                << context << " ii=" << f.ii;
        } else {
            EXPECT_EQ(f.feasible, l.feasible) << context << " ii=" << f.ii;
            EXPECT_EQ(f.status, l.status) << context << " ii=" << f.ii;
        }
    }
    EXPECT_EQ(feedback.search.skippedIis, skipped) << context;
    EXPECT_EQ(linear.search.skippedIis, 0) << context;

    // §4.3 accounting: every attempted failure bills its full budget,
    // skipped candidates bill nothing.
    EXPECT_EQ(feedback.totalSteps,
              linear.totalSteps - skipped * linear.budget)
        << context;
    if (skipped == 0) {
        EXPECT_EQ(feedback.totalSteps, linear.totalSteps) << context;
        EXPECT_EQ(feedback.totalUnschedules, linear.totalUnschedules)
            << context;
    }
}

/**
 * The soundness property behind every skip: a candidate II the probe
 * skipped must be infeasible for the *full loop*, as decided by the
 * exact branch-and-bound backend with no budget pressure.
 */
void
expectSkipsProvenInfeasible(const ir::Loop& loop,
                            const machine::MachineModel& machine,
                            const sched::ModuloScheduleOutcome& outcome,
                            const std::string& context)
{
    const auto graph = graph::buildDepGraph(loop, machine);
    const auto sccs = graph::findSccs(graph);
    sched::ExactScheduler exact(loop, machine, graph, sccs);
    for (const auto& record : outcome.search.records) {
        if (!record.skipped)
            continue;
        sched::AttemptStatus status = sched::AttemptStatus::kScheduled;
        const auto schedule = exact.trySchedule(
            record.ii, sched::kDefaultExactNodeBudget, nullptr, &status);
        EXPECT_FALSE(schedule.has_value())
            << context << ": skipped II " << record.ii
            << " is actually feasible";
        EXPECT_EQ(status, sched::AttemptStatus::kInfeasible)
            << context << ": skipped II " << record.ii
            << " not proven infeasible by the exact backend";
    }
}

TEST(FeedbackSearchTest, MatchesLinearOnKernelCorpus)
{
    for (const auto& machine : {machine::cydra5(), machine::scalarToy()}) {
        for (const auto& w : workloads::kernelLibrary()) {
            sched::ScheduleOptions linear;
            const auto expected = sched::schedule(w.loop, machine, linear);

            // The feedback strategy is single-worker; the thread knob
            // must be ignored, not change results.
            for (const int threads : {1, 4, 8}) {
                sched::ScheduleOptions fb;
                fb.search.withKind(sched::IiSearchKind::kFeedback)
                    .withThreads(threads);
                const auto got = sched::schedule(w.loop, machine, fb);
                const std::string context =
                    machine.name() + "/" + w.loop.name() + " threads=" +
                    std::to_string(threads);
                expectFeedbackMatchesLinear(expected, got, context);
                if (got.search.skippedIis > 0)
                    expectSkipsProvenInfeasible(w.loop, machine, got,
                                                context);
            }
        }
    }
}

TEST(FeedbackSearchTest, MatchesLinearOnFuzzGeneratedLoops)
{
    const auto machine = machine::cydra5();
    support::Rng rng(20260808);
    const auto profile = workloads::fuzzProfile();
    int hard = 0; // loops whose winning II exceeded the MII
    for (int i = 0; i < 200; ++i) {
        const auto loop = workloads::generateLoop(
            rng, "fb_fuzz_" + std::to_string(i), profile);

        sched::ScheduleOptions linear;
        const auto expected = sched::schedule(loop, machine, linear);
        hard += expected.attempts > 1;

        sched::ScheduleOptions fb;
        fb.search.withKind(sched::IiSearchKind::kFeedback);
        const auto got = sched::schedule(loop, machine, fb);
        expectFeedbackMatchesLinear(expected, got, loop.name());
        if (got.search.skippedIis > 0)
            expectSkipsProvenInfeasible(loop, machine, got, loop.name());
    }
    // The corpus must exercise multi-attempt searches, or the identity
    // above never reaches the probe-consulting path.
    EXPECT_GT(hard, 0);
}

TEST(FeedbackSearchTest, SkipsFireOnProvableGapsAndSaveBudget)
{
    // C=1980 = 2^2*3^2*5*11 puts divisor gaps at 9, 10, 11 and 12 —
    // inside the candidate range [MII=8, winner=13] — so the probe has
    // real skips to prove for both heuristic backends.
    for (const int c : {90, 1980}) {
        const auto machine = gapsterMachine(c);
        const auto loop = gapsterLoop(/*m=*/4, /*d=*/2);
        for (const auto strategy : {sched::SchedulerStrategy::kIterative,
                                    sched::SchedulerStrategy::kSlack}) {
            sched::ScheduleOptions linear;
            linear.strategy = strategy;
            const auto expected = sched::schedule(loop, machine, linear);

            sched::ScheduleOptions fb = linear;
            fb.search.withKind(sched::IiSearchKind::kFeedback);
            const auto got = sched::schedule(loop, machine, fb);

            const std::string context = "gapster C=" + std::to_string(c) +
                                        " " + expected.scheduler;
            expectFeedbackMatchesLinear(expected, got, context);
            EXPECT_GT(got.search.skippedIis, 0) << context;
            EXPECT_LT(got.totalSteps, expected.totalSteps) << context;
            // Every skipped candidate divides C (the construction's gaps).
            for (const auto& record : got.search.records) {
                if (record.skipped) {
                    EXPECT_EQ(c % record.ii, 0)
                        << context << " ii=" << record.ii;
                }
            }
            expectSkipsProvenInfeasible(loop, machine, got, context);
        }
    }
}

TEST(FeedbackSearchTest, ExactBackendConsumesFeedbackToo)
{
    // The exact backend reports unplaceable operations through the same
    // feedback channel; on the gapster the probe can then skip divisor
    // gaps the exact search would otherwise prove one by one.
    const auto machine = gapsterMachine(90);
    const auto loop = gapsterLoop(4, 2);

    sched::ScheduleOptions linear;
    linear.strategy = sched::SchedulerStrategy::kExact;
    const auto expected = sched::schedule(loop, machine, linear);

    sched::ScheduleOptions fb = linear;
    fb.search.withKind(sched::IiSearchKind::kFeedback);
    const auto got = sched::schedule(loop, machine, fb);

    expectFeedbackMatchesLinear(expected, got, "gapster exact");
    EXPECT_GT(got.search.skippedIis, 0);
    expectSkipsProvenInfeasible(loop, machine, got, "gapster exact");
}

// ---------------------------------------------------------------------------
// AttemptFeedback population by the schedulers.

TEST(AttemptFeedbackTest, UnplaceableOpsAtDivisorIis)
{
    const auto machine = gapsterMachine(90);
    const auto loop = gapsterLoop(4, 2);
    const auto gap_op = gapOpIndex(loop);

    // kMul's table uses `sparse` at times 0 and 90: unplaceable exactly
    // at IIs dividing 90.
    EXPECT_EQ(sched::collectUnplaceableOps(loop, machine, 9),
              std::vector<graph::VertexId>{gap_op});
    EXPECT_EQ(sched::collectUnplaceableOps(loop, machine, 10),
              std::vector<graph::VertexId>{gap_op});
    EXPECT_TRUE(sched::collectUnplaceableOps(loop, machine, 7).empty());
    EXPECT_TRUE(sched::collectUnplaceableOps(loop, machine, 11).empty());
}

TEST(AttemptFeedbackTest, IterativeSchedulerPopulatesTheSink)
{
    const auto machine = gapsterMachine(90);
    const auto loop = gapsterLoop(4, 2);
    const auto gap_op = gapOpIndex(loop);
    const auto graph = graph::buildDepGraph(loop, machine);
    const auto sccs = graph::findSccs(graph);

    sched::AttemptFeedback sink;
    sched::IterativeScheduleOptions options;
    options.feedback = &sink;
    sched::IterativeScheduler scheduler(loop, machine, graph, sccs,
                                        options);
    const std::int64_t budget = 2 * loop.size();

    // II 9 divides 90: infeasible, and the report names the culprit.
    sched::AttemptStatus status = sched::AttemptStatus::kScheduled;
    EXPECT_FALSE(scheduler.trySchedule(9, budget, nullptr, &status)
                     .has_value());
    EXPECT_EQ(status, sched::AttemptStatus::kInfeasible);
    EXPECT_EQ(sink.ii, 9);
    EXPECT_EQ(sink.status, sched::AttemptStatus::kInfeasible);
    EXPECT_EQ(sink.unplaceable, std::vector<graph::VertexId>{gap_op});
    EXPECT_TRUE(sink.conclusive());
    // Unplaceable operations lead the bottleneck regardless of cap.
    const auto bottleneck = sink.bottleneck(4);
    ASSERT_FALSE(bottleneck.empty());
    EXPECT_EQ(bottleneck.front(), gap_op);
    EXPECT_LE(bottleneck.size(), 4u);

    // II 8 (below the recurrence bound of the 4-add cycle) exhausts the
    // budget: the report carries the displacement storm instead, sorted
    // by count descending then id ascending, plus the resource classes
    // that forced the evictions.
    status = sched::AttemptStatus::kScheduled;
    EXPECT_FALSE(scheduler.trySchedule(8, budget, nullptr, &status)
                     .has_value());
    EXPECT_EQ(status, sched::AttemptStatus::kBudgetExhausted);
    EXPECT_EQ(sink.ii, 8);
    EXPECT_TRUE(sink.unplaceable.empty());
    ASSERT_FALSE(sink.displacements.empty());
    EXPECT_TRUE(sink.conclusive());
    for (std::size_t i = 1; i < sink.displacements.size(); ++i) {
        const auto& prev = sink.displacements[i - 1];
        const auto& cur = sink.displacements[i];
        EXPECT_TRUE(prev.count > cur.count ||
                    (prev.count == cur.count && prev.op < cur.op))
            << "displacements not in deterministic storm order at " << i;
    }
    for (std::size_t i = 1; i < sink.contendedResources.size(); ++i) {
        const auto& prev = sink.contendedResources[i - 1];
        const auto& cur = sink.contendedResources[i];
        EXPECT_TRUE(prev.evictions > cur.evictions ||
                    (prev.evictions == cur.evictions &&
                     prev.resource < cur.resource))
            << "contended resources not in deterministic order at " << i;
    }

    // A successful attempt clears the sink back to inconclusive.
    status = sched::AttemptStatus::kBudgetExhausted;
    EXPECT_TRUE(scheduler.trySchedule(11, 1 << 20, nullptr, &status)
                    .has_value());
    EXPECT_EQ(status, sched::AttemptStatus::kScheduled);
    EXPECT_FALSE(sink.conclusive());
    EXPECT_TRUE(sink.unplaceable.empty());
    EXPECT_TRUE(sink.displacements.empty());
}

TEST(AttemptFeedbackTest, FeedbackProbeAccumulatesAndProves)
{
    const auto machine = gapsterMachine(90);
    const auto loop = gapsterLoop(4, 2);
    const auto gap_op = gapOpIndex(loop);
    const auto graph = graph::buildDepGraph(loop, machine);
    const auto sccs = graph::findSccs(graph);

    sched::FeedbackProbe probe(loop, machine, graph, sccs,
                               /*subgraph_cap=*/12,
                               /*node_budget=*/200'000);

    sched::AttemptFeedback report;
    report.ii = 8;
    report.status = sched::AttemptStatus::kInfeasible;
    report.unplaceable = {gap_op};

    // The gap op alone is the whole bottleneck: II 9 and 10 divide 90
    // (proven infeasible), 11 does not (no proof, no skip).
    EXPECT_TRUE(probe(9, report));
    EXPECT_TRUE(probe(10, report));
    EXPECT_FALSE(probe(11, report));
    EXPECT_EQ(probe.probesRun(), 3);
    EXPECT_EQ(probe.probesProven(), 2);
    ASSERT_FALSE(probe.members().empty());
    EXPECT_EQ(probe.members().front(), gap_op);

    // Folding a displacement-storm report grows the member set with the
    // storm vertices closed under their SCCs, capped and sorted.
    sched::AttemptFeedback storm;
    storm.ii = 8;
    storm.status = sched::AttemptStatus::kBudgetExhausted;
    storm.displacements.push_back({0, 7});
    EXPECT_FALSE(probe(13, storm)); // 13 is the real winner: no proof
    const auto& members = probe.members();
    EXPECT_LE(members.size(), 12u);
    for (std::size_t i = 1; i < members.size(); ++i)
        EXPECT_LT(members[i - 1], members[i]);
}

// ---------------------------------------------------------------------------
// End-to-end wiring: pipeliner options, telemetry, options codec, cache.

TEST(FeedbackSearchTest, PipelineReportsSkippedIisInTelemetry)
{
    const auto machine = gapsterMachine(1980);
    const auto loop = gapsterLoop(4, 2);

    const core::SoftwarePipeliner linear(machine);
    const auto base = linear.pipeline(core::PipelineRequest(loop));
    ASSERT_TRUE(base.artifacts.has_value()) << base.firstError();

    const core::SoftwarePipeliner pipeliner(
        machine, core::PipelinerOptions{}
                     .withIiSearch(sched::IiSearchKind::kFeedback)
                     .withFeedback(/*subgraph_cap=*/12));
    const auto result = pipeliner.pipeline(core::PipelineRequest(loop));
    ASSERT_TRUE(result.artifacts.has_value()) << result.firstError();

    EXPECT_EQ(result.telemetry.iiStrategy, "feedback");
    EXPECT_GT(result.telemetry.iiSkipped, 0);
    EXPECT_EQ(result.telemetry.ii, base.telemetry.ii);
    EXPECT_EQ(result.telemetry.attempts, base.telemetry.attempts);
    EXPECT_LT(result.telemetry.stepsTotal, base.telemetry.stepsTotal);

    // The skip count survives the telemetry JSON round trip.
    const auto parsed =
        support::parseTelemetryJson(result.telemetry.toJson());
    EXPECT_EQ(parsed.iiSkipped, result.telemetry.iiSkipped);
}

TEST(FeedbackSearchTest, OptionsCodecNormalizesFeedbackKnobsAway)
{
    // Skips are sound proofs, so feedback results equal linear's for
    // every knob setting: the canonical options text — and hence the
    // service cache key — must not depend on any of them.
    const std::string canonical =
        service::canonicalOptionsText(core::PipelinerOptions{});
    EXPECT_EQ(service::canonicalOptionsText(
                  core::PipelinerOptions{}
                      .withIiSearch(sched::IiSearchKind::kFeedback)
                      .withFeedback(/*subgraph_cap=*/3,
                                    /*skip_infeasible=*/false,
                                    /*probe_budget=*/999)),
              canonical);
    // Round trip through the parser stays canonical.
    EXPECT_EQ(service::canonicalOptionsText(
                  service::parseOptionsText(canonical)),
              canonical);
}

TEST(FeedbackSearchTest, ServiceCacheHitsAcrossSearchStrategies)
{
    // A feedback request must land on the cache line a linear request
    // warmed (and vice versa): same loop, same semantic options, only
    // the search strategy differs.
    service::ScheduleService server(
        service::ServiceOptions{}.withThreads(1));

    service::ServiceRequest cold_request;
    cold_request.loopText =
        ir::printLoop(workloads::kernelByName("tridiag").loop);
    const auto cold = server.scheduleNow(cold_request);
    ASSERT_TRUE(cold.ok()) << cold.errorMessage;
    EXPECT_FALSE(cold.cacheHit);

    service::ServiceRequest feedback_request = cold_request;
    feedback_request.options =
        core::PipelinerOptions{}
            .withIiSearch(sched::IiSearchKind::kFeedback)
            .withFeedback(/*subgraph_cap=*/5);
    const auto hit = server.scheduleNow(feedback_request);
    ASSERT_TRUE(hit.ok()) << hit.errorMessage;
    EXPECT_TRUE(hit.cacheHit);
    EXPECT_EQ(hit.result.get(), cold.result.get());
}

} // namespace
