/**
 * @file
 * Round-trip property tests for the mini-IR printer and the machine
 * description I/O: parse(print(x)) must be semantically identical to x
 * for every corpus kernel, for freshly generated loops, and for both
 * hand-written and random machine models. Fuzz reproducer emission and
 * replay depend on these properties.
 */
#include <gtest/gtest.h>

#include <limits>

#include "fuzz/machine_gen.hpp"
#include "ir/loop_builder.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "machine/cydra5.hpp"
#include "machine/machine_io.hpp"
#include "machine/machines.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_loops.hpp"

namespace ims {
namespace {

void
expectRoundTrip(const ir::Loop& loop)
{
    const std::string text = ir::printLoop(loop);
    ir::Loop reparsed = ir::parseLoop(text);
    EXPECT_TRUE(ir::equivalentLoops(loop, reparsed))
        << loop.name() << " does not round-trip:\n"
        << text;
    // The printed form is canonical: printing the reparsed loop
    // reproduces the text byte for byte.
    EXPECT_EQ(text, ir::printLoop(reparsed)) << loop.name();
}

TEST(PrinterRoundTrip, EveryCorpusKernel)
{
    for (const auto& workload : workloads::kernelLibrary())
        expectRoundTrip(workload.loop);
}

TEST(PrinterRoundTrip, GeneratedLoops)
{
    support::Rng rng(0x52415531994ULL);
    const workloads::GeneratorProfile corpus_profile;
    const workloads::GeneratorProfile fuzz_profile =
        workloads::fuzzProfile();
    for (int i = 0; i < 200; ++i) {
        const auto& profile = i % 2 == 0 ? corpus_profile : fuzz_profile;
        expectRoundTrip(workloads::generateLoop(
            rng, "gen_" + std::to_string(i), profile));
    }
}

TEST(PrinterRoundTrip, EquivalentLoopsDetectsDifferences)
{
    const auto make = [](double immediate) {
        ir::LoopBuilder builder("pair");
        builder.op(ir::Opcode::kAdd, "x",
                   {builder.imm(immediate), builder.imm(2.0)});
        builder.closeLoop();
        return builder.build();
    };
    const ir::Loop a = make(1.0);
    EXPECT_TRUE(ir::equivalentLoops(a, make(1.0)));
    EXPECT_FALSE(ir::equivalentLoops(a, make(1.5)));
}

TEST(PrinterRoundTrip, ImmediatePrecision)
{
    ir::LoopBuilder builder("immediates");
    builder.op(ir::Opcode::kAdd, "x",
               {builder.imm(0.1), builder.imm(1.0 / 3.0)});
    builder.op(ir::Opcode::kMul, "y",
               {builder.reg("x"), builder.imm(1e-30)});
    builder.closeLoop();
    expectRoundTrip(builder.build());
}

TEST(PrinterRoundTrip, ImmediateEdgeCases)
{
    // The service cache keys on printed bytes, so the printer must be
    // byte-stable even for the IEEE-754 corner cases: negative zero
    // keeps its sign, non-finite values print as parseable keywords,
    // and denormals/extremes survive the round trip exactly.
    ir::LoopBuilder builder("edge_immediates");
    builder.op(ir::Opcode::kAdd, "a",
               {builder.imm(-0.0), builder.imm(0.0)});
    builder.op(ir::Opcode::kAdd, "b",
               {builder.imm(std::numeric_limits<double>::quiet_NaN()),
                builder.imm(std::numeric_limits<double>::infinity())});
    builder.op(ir::Opcode::kAdd, "c",
               {builder.imm(-std::numeric_limits<double>::infinity()),
                builder.imm(std::numeric_limits<double>::denorm_min())});
    builder.op(ir::Opcode::kMul, "d",
               {builder.imm(std::numeric_limits<double>::max()),
                builder.imm(-4.9406564584124654e-316)});
    builder.closeLoop();
    const ir::Loop loop = builder.build();

    const std::string text = ir::printLoop(loop);
    const ir::Loop reparsed = ir::parseLoop(text);
    EXPECT_EQ(text, ir::printLoop(reparsed));

    // -0.0 must not collapse to 0.0 (memcmp-distinct => key-distinct).
    EXPECT_NE(text.find("#-0"), std::string::npos) << text;
    // Non-finite immediates use the parser's keywords, never printf's
    // locale-dependent spellings.
    EXPECT_NE(text.find("#nan"), std::string::npos) << text;
    EXPECT_NE(text.find("#inf"), std::string::npos) << text;
    EXPECT_NE(text.find("#-inf"), std::string::npos) << text;
}

void
expectMachineRoundTrip(const machine::MachineModel& machine)
{
    const std::string text = machine::printMachine(machine);
    const machine::MachineModel reparsed = machine::parseMachine(text);
    EXPECT_EQ(text, machine::printMachine(reparsed)) << machine.name();
    EXPECT_EQ(machine.toString(), reparsed.toString()) << machine.name();
}

TEST(MachineIoRoundTrip, BuiltinMachines)
{
    expectMachineRoundTrip(machine::cydra5());
    expectMachineRoundTrip(machine::clean64());
    expectMachineRoundTrip(machine::wideVliw());
    expectMachineRoundTrip(machine::scalarToy());
}

TEST(MachineIoRoundTrip, GeneratedMachines)
{
    support::Rng rng(7);
    for (int i = 0; i < 50; ++i) {
        expectMachineRoundTrip(
            fuzz::generateMachine(rng, "gm_" + std::to_string(i)));
    }
}

TEST(MachineIo, RejectsMalformedInput)
{
    EXPECT_THROW(machine::parseMachine("resource r0\n"), support::Error);
    EXPECT_THROW(machine::parseMachine("machine m\nopcode bogus 1\n"),
                 support::Error);
    EXPECT_THROW(
        machine::parseMachine("machine m\nresource r0\nresource r0\n"),
        support::Error);
    EXPECT_THROW(machine::parseMachine(
                     "machine m\nresource r0\nopcode add 1\nalt a 0:rX\n"),
                 support::Error);
}

} // namespace
} // namespace ims
