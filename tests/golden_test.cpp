#include <gtest/gtest.h>

#include "core/pipeliner.hpp"
#include "graph/graph_builder.hpp"
#include "graph/scc.hpp"
#include "machine/cydra5.hpp"
#include "mii/mii.hpp"
#include "sched/schedule.hpp"
#include "support/stats.hpp"
#include "workloads/corpus.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;

/**
 * Golden regression values: the achieved II per kernel on the Cydra-5
 * model is pinned exactly (the scheduler is deterministic). A change here
 * means the algorithm's behaviour changed — update deliberately, never
 * casually.
 */
struct Golden
{
    const char* kernel;
    int mii;
    int ii;
};

constexpr Golden kGolden[] = {
    {"init_store", 1, 1},    {"vec_copy", 1, 1},
    {"vec_scale", 1, 1},     {"daxpy", 2, 2},
    {"dot_raw", 4, 4},       {"dot_bs4", 2, 2},
    {"first_order_rec", 9, 9}, {"tridiag", 9, 9},
    {"hydro_frag", 5, 5},    {"state_frag", 8, 8},
    {"stencil3", 3, 3},      {"mem_recurrence", 30, 30},
    {"cond_store", 2, 2},    {"max_reduce", 4, 4},
    {"div_kernel", 18, 18},  {"sqrt_kernel", 22, 22},
    {"horner_rec", 9, 9},    {"raw_counter", 3, 3},
    {"lfk20_ordinates", 31, 31}, {"fir8", 15, 15},
    {"complex_mult", 6, 6},  {"dual_store", 2, 2},
};

TEST(GoldenTest, KernelIisOnCydra5)
{
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    for (const auto& golden : kGolden) {
        const auto w = workloads::kernelByName(golden.kernel);
        const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
        EXPECT_EQ(artifacts.outcome.mii, golden.mii) << golden.kernel;
        EXPECT_EQ(artifacts.outcome.schedule.ii, golden.ii)
            << golden.kernel;
    }
}

/**
 * Corpus-level invariants behind Table 3: guard the workload calibration
 * so a generator change that breaks the paper's shape fails loudly. Run
 * on a 250-loop slice to keep the test fast.
 */
TEST(GoldenTest, CorpusShapeMatchesTable3Bands)
{
    const auto machine = machine::cydra5();
    workloads::CorpusSpec spec;
    spec.perfectLoops = 180;
    spec.specLoops = 50;
    spec.lfkLoops = 20;
    const auto corpus = workloads::buildCorpus(spec);

    sched::ScheduleOptions options;
    options.search.budgetRatio = 6.0;

    std::vector<double> ops, at_mii, vectorizable, rec_le_res;
    for (const auto& w : corpus) {
        const auto g = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(g);
        const auto mii = mii::computeMii(w.loop, machine, g, sccs);
        const auto outcome =
            sched::schedule(w.loop, machine, g, sccs, options);
        ops.push_back(w.loop.size());
        at_mii.push_back(outcome.schedule.ii == mii.mii ? 1.0 : 0.0);
        int non_trivial = 0;
        for (const auto& component : sccs.components()) {
            non_trivial += !g.isPseudo(component.front()) &&
                           component.size() > 1;
        }
        vectorizable.push_back(non_trivial == 0 ? 1.0 : 0.0);
        rec_le_res.push_back(
            mii::computeTrueRecMii(g, sccs) <= mii.resMii ? 1.0 : 0.0);
    }

    // Loop sizes: median near the paper's ~12, mean near ~19.5.
    EXPECT_GE(support::median(ops), 6.0);
    EXPECT_LE(support::median(ops), 18.0);
    EXPECT_GE(support::mean(ops), 12.0);
    EXPECT_LE(support::mean(ops), 28.0);
    // Near-universal optimality (paper: 96%).
    EXPECT_GE(support::mean(at_mii), 0.90);
    // Vectorizable fraction (paper: 77%).
    EXPECT_GE(support::mean(vectorizable), 0.60);
    EXPECT_LE(support::mean(vectorizable), 0.95);
    // RecMII below ResMII for most loops (paper: 84%).
    EXPECT_GE(support::mean(rec_le_res), 0.60);
}

/**
 * Figure 6 shape invariants on a small corpus slice: dilation falls as
 * the budget grows; inefficiency is no better at a starved budget than
 * near the paper's optimum.
 */
TEST(GoldenTest, BudgetRatioCurveShape)
{
    const auto machine = machine::cydra5();
    workloads::CorpusSpec spec;
    spec.perfectLoops = 120;
    spec.specLoops = 40;
    spec.lfkLoops = 20;
    const auto corpus = workloads::buildCorpus(spec);

    auto sweep = [&](double budget_ratio) {
        sched::ScheduleOptions options;
        options.search.budgetRatio = budget_ratio;
        long long steps = 0, ops = 0;
        double ii_sum = 0.0, mii_sum = 0.0;
        for (const auto& w : corpus) {
            const auto g = graph::buildDepGraph(w.loop, machine);
            const auto sccs = graph::findSccs(g);
            const auto outcome =
                sched::schedule(w.loop, machine, g, sccs, options);
            steps += outcome.totalSteps;
            ops += w.loop.size() + 2;
            ii_sum += outcome.schedule.ii;
            mii_sum += outcome.mii;
        }
        return std::make_pair(static_cast<double>(steps) / ops,
                              ii_sum / mii_sum);
    };

    const auto [ineff_1, ii_1] = sweep(1.0);
    const auto [ineff_2, ii_2] = sweep(2.0);
    const auto [ineff_4, ii_4] = sweep(4.0);

    // Quality improves (weakly) with budget.
    EXPECT_GE(ii_1, ii_2);
    EXPECT_GE(ii_2, ii_4);
    // A starved budget wastes whole attempts: worse inefficiency than
    // the recommended setting (the left side of Figure 6's U).
    EXPECT_GT(ineff_1, ineff_2);
    // And a lavish budget spends more per op than the optimum region
    // (the right side of the U rises slowly).
    EXPECT_GE(ineff_4, ineff_2 * 0.95);
}

} // namespace
