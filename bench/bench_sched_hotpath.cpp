/**
 * @file
 * Scheduler hot-path benchmark and schedule-identity harness.
 *
 * Two jobs in one binary:
 *
 *  1. **Identity**: modulo-schedule every kernel of the Cydra-5 kernel
 *     corpus with the default production options and compare (II, schedule
 *     hash, unschedule count) against a checked-in golden file captured on
 *     the pre-overhaul seed. A schedule may differ from the seed only when
 *     the forced-placement displacement fix *strictly* reduced the
 *     unschedule count for that loop; anything else is a regression.
 *
 *  2. **Throughput**: sweep loop sizes (unrolled kernels up to 400+ ops)
 *     through the raw scheduler and through the BatchPipeliner at several
 *     thread counts, and report scheduler steps/second and loops/second.
 *     The results are written as BENCH_sched_hotpath.json; with
 *     --baseline the run fails if any metric regresses by more than 10%
 *     against the checked-in baseline (scripts/check_perf.sh drives this).
 *
 * Usage:
 *   bench_sched_hotpath [--golden PATH] [--write-golden PATH]
 *                       [--out PATH] [--baseline PATH]
 *                       [--threads a,b,c] [--quick] [--scaling-gate]
 *
 * --scaling-gate additionally fails the run when the BatchPipeliner does
 * not reach 3x loops/second at 8 threads over 1 thread — enforced only
 * when the host reports >= 8 hardware threads (the JSON records
 * `gate_enforced` so CI logs show whether the gate was live).
 */
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_pipeliner.hpp"
#include "graph/graph_builder.hpp"
#include "graph/scc.hpp"
#include "machine/cydra5.hpp"
#include "sched/schedule.hpp"
#include "sched/mrt.hpp"
#include "support/table.hpp"
#include "transform/unroll.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** FNV-1a over the schedule's (II, times, alternatives). */
std::uint64_t
scheduleHash(const sched::ScheduleResult& schedule)
{
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t value) {
        h ^= value;
        h *= 1099511628211ULL;
    };
    mix(static_cast<std::uint64_t>(schedule.ii));
    for (std::size_t v = 0; v < schedule.times.size(); ++v) {
        mix(static_cast<std::uint64_t>(schedule.times[v]));
        mix(static_cast<std::uint64_t>(schedule.alternatives[v]));
    }
    return h;
}

/**
 * Minimal parser for the flat JSON this bench itself writes: extracts the
 * array named `key` as a list of string->string maps (numbers kept as
 * their literal text). No nesting inside array elements.
 */
std::vector<std::map<std::string, std::string>>
parseObjectArray(const std::string& text, const std::string& key)
{
    std::vector<std::map<std::string, std::string>> result;
    const auto array_pos = text.find("\"" + key + "\"");
    if (array_pos == std::string::npos)
        return result;
    std::size_t pos = text.find('[', array_pos);
    const std::size_t end = text.find(']', pos);
    if (pos == std::string::npos || end == std::string::npos)
        return result;
    while (true) {
        const std::size_t open = text.find('{', pos);
        if (open == std::string::npos || open > end)
            break;
        const std::size_t close = text.find('}', open);
        std::map<std::string, std::string> object;
        std::size_t cursor = open;
        while (true) {
            const std::size_t kq = text.find('"', cursor);
            if (kq == std::string::npos || kq > close)
                break;
            const std::size_t kq2 = text.find('"', kq + 1);
            const std::string name = text.substr(kq + 1, kq2 - kq - 1);
            std::size_t vstart = text.find(':', kq2) + 1;
            while (vstart < close && std::isspace(text[vstart]))
                ++vstart;
            std::string value;
            if (text[vstart] == '"') {
                const std::size_t vend = text.find('"', vstart + 1);
                value = text.substr(vstart + 1, vend - vstart - 1);
                cursor = vend + 1;
            } else {
                std::size_t vend = vstart;
                while (vend < close && text[vend] != ',' &&
                       text[vend] != '}')
                    ++vend;
                value = text.substr(vstart, vend - vstart);
                while (!value.empty() && std::isspace(value.back()))
                    value.pop_back();
                cursor = vend;
            }
            object[name] = value;
        }
        result.push_back(std::move(object));
        pos = close + 1;
    }
    return result;
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "bench_sched_hotpath: cannot read " << path << "\n";
        std::exit(1);
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::vector<int>
parseThreadList(const std::string& text)
{
    std::vector<int> threads;
    std::stringstream in(text);
    std::string item;
    while (std::getline(in, item, ',')) {
        const int value = std::atoi(item.c_str());
        if (value <= 0)
            return {};
        threads.push_back(value);
    }
    return threads;
}

/** One identity record: what the seed produced for a kernel. */
struct IdentityRecord
{
    std::string name;
    int ii = 0;
    int scheduleLength = 0;
    long long unschedules = 0;
    std::uint64_t hash = 0;
};

std::vector<IdentityRecord>
measureIdentity()
{
    const auto machine = machine::cydra5();
    std::vector<IdentityRecord> records;
    for (const auto& w : workloads::kernelLibrary()) {
        const auto graph = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(graph);
        const auto outcome =
            sched::schedule(w.loop, machine, graph, sccs);
        IdentityRecord record;
        record.name = w.loop.name();
        record.ii = outcome.schedule.ii;
        record.scheduleLength = outcome.schedule.scheduleLength;
        record.unschedules = outcome.totalUnschedules;
        record.hash = scheduleHash(outcome.schedule);
        records.push_back(std::move(record));
    }
    return records;
}

void
writeGolden(const std::vector<IdentityRecord>& records,
            const std::string& path)
{
    std::ofstream out(path);
    out << "{\n  \"schema\": \"ims.sched_identity.v1\",\n  \"kernels\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto& r = records[i];
        out << "    {\"name\": \"" << r.name << "\", \"ii\": " << r.ii
            << ", \"schedule_length\": " << r.scheduleLength
            << ", \"unschedules\": " << r.unschedules << ", \"hash\": \""
            << r.hash << "\"}" << (i + 1 < records.size() ? "," : "")
            << "\n";
    }
    out << "  ]\n}\n";
}

/** Returns the number of mismatches (0 = identity holds). */
int
checkIdentity(const std::vector<IdentityRecord>& current,
              const std::string& golden_path)
{
    const auto golden_objects =
        parseObjectArray(readFile(golden_path), "kernels");
    std::map<std::string, IdentityRecord> golden;
    for (const auto& object : golden_objects) {
        IdentityRecord r;
        r.name = object.at("name");
        r.ii = std::atoi(object.at("ii").c_str());
        r.scheduleLength = std::atoi(object.at("schedule_length").c_str());
        r.unschedules = std::atoll(object.at("unschedules").c_str());
        r.hash = std::strtoull(object.at("hash").c_str(), nullptr, 10);
        golden[r.name] = r;
    }

    int mismatches = 0;
    int improved = 0;
    for (const auto& r : current) {
        const auto it = golden.find(r.name);
        if (it == golden.end()) {
            std::cerr << "identity: kernel '" << r.name
                      << "' missing from golden file\n";
            ++mismatches;
            continue;
        }
        const auto& g = it->second;
        const bool identical =
            r.hash == g.hash && r.ii == g.ii &&
            r.unschedules <= g.unschedules;
        const bool strictly_better =
            r.ii <= g.ii && r.unschedules < g.unschedules;
        if (identical)
            continue;
        if (strictly_better) {
            ++improved;
            continue;
        }
        std::cerr << "identity: '" << r.name << "' diverged: II " << r.ii
                  << " (seed " << g.ii << "), unschedules "
                  << r.unschedules << " (seed " << g.unschedules
                  << "), hash " << r.hash << " (seed " << g.hash << ")\n";
        ++mismatches;
    }
    std::cout << "identity: " << current.size() << " kernels, "
              << improved
              << " improved by the displacement fix, " << mismatches
              << " regressions\n";
    return mismatches;
}

/** One scheduler-only throughput sample. */
struct SchedSample
{
    std::string name;
    /** Backend that actually ran ("iterative" on the hot path — the
     *  exact backend must never be selected here; check_perf asserts
     *  on this field). */
    std::string scheduler;
    int ops = 0;
    int ii = 0;
    int repeats = 0;
    long long steps = 0;
    double wallSeconds = 0.0;
    double stepsPerSecond = 0.0;
};

SchedSample
measureScheduler(const ir::Loop& loop, const machine::MachineModel& machine,
                 int repeats)
{
    SchedSample sample;
    sample.name = loop.name();
    sample.ops = loop.size();
    sample.repeats = repeats;

    const auto graph = graph::buildDepGraph(loop, machine);
    const auto sccs = graph::findSccs(graph);
    const sched::ScheduleOptions options;

    const auto start = Clock::now();
    for (int i = 0; i < repeats; ++i) {
        const auto outcome =
            sched::schedule(loop, machine, graph, sccs, options);
        sample.ii = outcome.schedule.ii;
        sample.scheduler = outcome.scheduler;
        sample.steps += outcome.totalSteps;
    }
    sample.wallSeconds = secondsSince(start);
    sample.stepsPerSecond =
        static_cast<double>(sample.steps) /
        std::max(sample.wallSeconds, 1e-12);
    return sample;
}

/** One BatchPipeliner throughput sample. */
struct BatchSample
{
    std::string name;
    int loops = 0;
    int threads = 0;
    /** Whole-batch repetitions the calibration loop accumulated. */
    int runs = 0;
    /** Work-stealing migrations summed over the runs (observability). */
    std::uint64_t workSteals = 0;
    double wallSeconds = 0.0;
    double loopsPerSecond = 0.0;
};

/** One MRT probe-kernel sample. */
struct MrtSample
{
    std::string name;
    long long operations = 0;
    /** Candidate issue times answered per call (II for a slot scan). */
    int coverage = 1;
    double wallSeconds = 0.0;
    double perSecond = 0.0;
};

/**
 * Microbenchmark of the three MRT conflict kernels against one
 * realistically loaded table: the owner-cell use-list walk (the old hot
 * path, kept as the displacement oracle), the compiled-mask single-time
 * probe, and the word-parallel whole-window slot scan. One slot scan
 * answers the same question as II single-time probes.
 */
std::vector<MrtSample>
measureMrtKernels(const machine::MachineModel& machine, bool quick)
{
    const int num_resources = machine.numResources();
    const int ii = 16;
    constexpr int kNumOps = 64;
    sched::ModuloReservationTable mrt(ii, num_resources, kNumOps);

    // Deterministically fill roughly half the table with random ops so
    // probes see a realistic mix of hits and misses.
    std::mt19937 rng(12345);
    std::uniform_int_distribution<int> num_uses(2, 5);
    std::uniform_int_distribution<int> use_time(0, 2 * ii);
    std::uniform_int_distribution<int> resource(0, num_resources - 1);
    const auto random_table = [&] {
        machine::ReservationTable table;
        const int n = num_uses(rng);
        for (int i = 0; i < n; ++i)
            table.addUse(use_time(rng), resource(rng));
        return table;
    };
    for (int op = 0; op < kNumOps; ++op) {
        const auto table = random_table();
        if (sched::ModuloReservationTable::selfConflicts(table, ii))
            continue;
        for (int t = 0; t < ii; ++t) {
            if (!mrt.conflicts(table, t)) {
                mrt.reserve(op, table, t);
                break;
            }
        }
    }

    constexpr int kNumProbes = 16;
    std::vector<machine::ReservationTable> probes;
    std::vector<machine::CompiledReservationTable> compiled;
    for (int i = 0; i < kNumProbes; ++i) {
        auto table = random_table();
        while (sched::ModuloReservationTable::selfConflicts(table, ii))
            table = random_table();
        compiled.emplace_back(table, ii, num_resources);
        probes.push_back(std::move(table));
    }

    const long long iterations = quick ? 100'000 : 4'000'000;
    std::vector<MrtSample> samples;
    long long sink = 0;
    const auto run = [&](const char* name, int coverage, auto&& body) {
        const auto start = Clock::now();
        for (long long i = 0; i < iterations; ++i)
            sink += body(static_cast<int>(i % kNumProbes),
                         static_cast<int>(i % (2 * ii)));
        MrtSample sample;
        sample.name = name;
        sample.operations = iterations;
        sample.coverage = coverage;
        sample.wallSeconds = secondsSince(start);
        sample.perSecond = static_cast<double>(iterations) /
                           std::max(sample.wallSeconds, 1e-12);
        samples.push_back(std::move(sample));
    };
    run("cell_probe", 1, [&](int p, int t) {
        return mrt.conflicts(probes[p], t) ? 1 : 0;
    });
    run("mask_probe", 1, [&](int p, int t) {
        return mrt.conflicts(compiled[p], t) ? 1 : 0;
    });
    // One scan answers "first free of the II candidates", i.e. the work
    // FindTimeSlot previously spread over up to II single-time probes.
    run("slot_scan", ii,
        [&](int p, int t) { return mrt.firstFreeSlot(compiled[p], t); });
    if (sink == 42)
        std::cout << "";
    return samples;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string golden_path;
    std::string write_golden_path;
    std::string out_path = "BENCH_sched_hotpath.json";
    std::string baseline_path;
    std::vector<int> thread_counts = {1, 2, 4, 8};
    bool quick = false;
    bool scaling_gate = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--golden") == 0 && i + 1 < argc)
            golden_path = argv[++i];
        else if (std::strcmp(argv[i], "--write-golden") == 0 && i + 1 < argc)
            write_golden_path = argv[++i];
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc)
            baseline_path = argv[++i];
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            thread_counts = parseThreadList(argv[++i]);
        else if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--scaling-gate") == 0)
            scaling_gate = true;
        else {
            std::cerr << "usage: bench_sched_hotpath [--golden PATH] "
                         "[--write-golden PATH] [--out PATH] "
                         "[--baseline PATH] [--threads a,b,c] [--quick] "
                         "[--scaling-gate]\n";
            return 2;
        }
    }
    if (thread_counts.empty()) {
        std::cerr << "bench_sched_hotpath: bad --threads list\n";
        return 2;
    }

    const auto machine = machine::cydra5();

    // --- Identity on the Cydra-5 kernel corpus -------------------------
    const auto identity = measureIdentity();
    if (!write_golden_path.empty()) {
        writeGolden(identity, write_golden_path);
        std::cout << "wrote golden identity for " << identity.size()
                  << " kernels to " << write_golden_path << "\n";
        return 0;
    }
    if (!golden_path.empty() && checkIdentity(identity, golden_path) != 0)
        return 1;

    // --- Scheduler-only steps/second over a loop-size sweep ------------
    // Unroll streaming/stencil kernels to hit the target op counts; the
    // repeat counts keep each sample's wall time well above timer noise.
    struct SweepPoint
    {
        const char* kernel;
        int targetOps;
        int repeats;
    };
    const std::vector<SweepPoint> sweep = {
        {"daxpy", 50, 4000},      {"daxpy", 100, 2000},
        {"daxpy", 200, 1200},     {"daxpy", 400, 600},
        {"daxpy", 800, 200},      {"hydro_frag", 200, 1000},
        {"stencil3", 400, 300},
    };

    support::TextTable sched_table("scheduler steps/second (Cydra 5)");
    sched_table.addHeader(
        {"loop", "ops", "II", "repeats", "steps", "wall s", "steps/s"});
    std::vector<SchedSample> sched_samples;
    for (const auto& point : sweep) {
        const auto base = workloads::kernelByName(point.kernel);
        const int factor =
            std::max(1, point.targetOps / std::max(1, base.loop.size()));
        ir::Loop loop = factor == 1
                            ? base.loop
                            : transform::unrollLoop(base.loop, factor);
        const int repeats = quick ? std::max(1, point.repeats / 40)
                                  : point.repeats;
        auto sample = measureScheduler(loop, machine, repeats);
        sample.name = std::string(point.kernel) + "_x" +
                      std::to_string(factor);
        sched_table.addRow({sample.name, std::to_string(sample.ops),
                            std::to_string(sample.ii),
                            std::to_string(sample.repeats),
                            std::to_string(sample.steps),
                            support::formatDouble(sample.wallSeconds, 3),
                            support::formatDouble(sample.stepsPerSecond,
                                                  0)});
        sched_samples.push_back(std::move(sample));
    }
    sched_table.print(std::cout);
    std::cout << "\n";

    // --- BatchPipeliner loops/second across thread counts --------------
    // A mixed batch of mid/large unrolled loops; every thread count must
    // produce the same schedules (BatchPipeliner guarantees it).
    std::vector<ir::Loop> batch_loops;
    for (const auto& spec :
         {std::pair<const char*, int>{"daxpy", 32},
          std::pair<const char*, int>{"hydro_frag", 12},
          std::pair<const char*, int>{"stencil3", 20},
          std::pair<const char*, int>{"dot_bs4", 12}}) {
        const auto base = workloads::kernelByName(spec.first);
        const int copies = quick ? 2 : 16;
        for (int c = 0; c < copies; ++c)
            batch_loops.push_back(
                transform::unrollLoop(base.loop, spec.second));
    }

    // Self-calibrating measurement: the mixed batch alone takes ~50 ms,
    // well inside scheduler-jitter territory, so each thread count
    // repeats the whole batch until a minimum wall time has accumulated
    // and reports the aggregate rate.
    const double min_batch_wall = quick ? 0.05 : 0.75;
    support::TextTable batch_table("BatchPipeliner throughput");
    batch_table.addHeader(
        {"loops", "threads", "runs", "steals", "wall s", "loops/s"});
    std::vector<BatchSample> batch_samples;
    for (const int threads : thread_counts) {
        core::BatchPipeliner batch(
            machine, core::BatchOptions{}.withThreads(threads));
        BatchSample sample;
        sample.name = "batch_t" + std::to_string(threads);
        sample.loops = static_cast<int>(batch_loops.size());
        sample.threads = threads;
        const auto start = Clock::now();
        do {
            const auto result = batch.run(batch_loops);
            if (result.failures() != 0) {
                std::cerr << "batch sweep: " << result.failures()
                          << " loops failed to pipeline\n";
                return 1;
            }
            ++sample.runs;
            sample.workSteals += result.workSteals;
            sample.wallSeconds = secondsSince(start);
        } while (sample.wallSeconds < min_batch_wall);
        sample.loopsPerSecond =
            static_cast<double>(sample.loops) * sample.runs /
            std::max(sample.wallSeconds, 1e-12);
        batch_table.addRow({std::to_string(sample.loops),
                            std::to_string(sample.threads),
                            std::to_string(sample.runs),
                            std::to_string(sample.workSteals),
                            support::formatDouble(sample.wallSeconds, 3),
                            support::formatDouble(sample.loopsPerSecond,
                                                  1)});
        batch_samples.push_back(std::move(sample));
    }
    batch_table.print(std::cout);

    // Conditional scaling gate: on real many-core hardware the stealing
    // batch driver must deliver >= 3x at 8 threads over 1; on smaller
    // machines (CI containers pinned to a core or two) the numbers are
    // still recorded but cannot gate.
    const unsigned hardware_threads = std::thread::hardware_concurrency();
    double batch_t1_rate = 0.0;
    double batch_t8_rate = 0.0;
    for (const auto& s : batch_samples) {
        if (s.threads == 1)
            batch_t1_rate = s.loopsPerSecond;
        if (s.threads == 8)
            batch_t8_rate = s.loopsPerSecond;
    }
    const double batch_scaling =
        batch_t1_rate > 0.0 ? batch_t8_rate / batch_t1_rate : 0.0;
    const bool gate_enforced = scaling_gate && hardware_threads >= 8 &&
                               batch_t1_rate > 0.0 && batch_t8_rate > 0.0;
    if (batch_t1_rate > 0.0 && batch_t8_rate > 0.0) {
        std::cout << "batch scaling t8/t1: "
                  << support::formatDouble(batch_scaling, 2) << "x ("
                  << hardware_threads << " hardware threads, gate "
                  << (gate_enforced ? "enforced" : "not enforced")
                  << ")\n";
    }
    std::cout << "\n";

    // --- MRT probe kernels ---------------------------------------------
    const auto mrt_samples = measureMrtKernels(machine, quick);
    support::TextTable mrt_table("MRT probe kernels (ii=16, half full)");
    mrt_table.addHeader({"kernel", "calls", "wall s", "calls/s",
                         "candidates/s", "vs cell_probe"});
    const double cell_rate = mrt_samples.front().perSecond;
    for (const auto& s : mrt_samples) {
        const double candidate_rate = s.perSecond * s.coverage;
        mrt_table.addRow(
            {s.name, std::to_string(s.operations),
             support::formatDouble(s.wallSeconds, 3),
             support::formatDouble(s.perSecond, 0),
             support::formatDouble(candidate_rate, 0),
             support::formatDouble(candidate_rate / cell_rate, 2) + "x"});
    }
    mrt_table.print(std::cout);

    // --- Emit the JSON report ------------------------------------------
    {
        std::ofstream out(out_path);
        out << "{\n  \"schema\": \"ims.bench_sched_hotpath.v1\",\n"
            << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
            << "  \"hardware_concurrency\": " << hardware_threads << ",\n"
            << "  \"batch_scaling_t8_over_t1\": " << batch_scaling << ",\n"
            << "  \"gate_enforced\": " << (gate_enforced ? "true" : "false")
            << ",\n"
            << "  \"sched\": [\n";
        for (std::size_t i = 0; i < sched_samples.size(); ++i) {
            const auto& s = sched_samples[i];
            out << "    {\"name\": \"" << s.name << "\", \"scheduler\": \""
                << s.scheduler << "\", \"ops\": "
                << s.ops << ", \"ii\": " << s.ii << ", \"repeats\": "
                << s.repeats << ", \"steps\": " << s.steps
                << ", \"wall_seconds\": " << s.wallSeconds
                << ", \"steps_per_second\": " << s.stepsPerSecond << "}"
                << (i + 1 < sched_samples.size() ? "," : "") << "\n";
        }
        out << "  ],\n  \"batch\": [\n";
        for (std::size_t i = 0; i < batch_samples.size(); ++i) {
            const auto& s = batch_samples[i];
            out << "    {\"name\": \"" << s.name << "\", \"loops\": "
                << s.loops << ", \"threads\": " << s.threads
                << ", \"runs\": " << s.runs << ", \"work_steals\": "
                << s.workSteals << ", \"wall_seconds\": " << s.wallSeconds
                << ", \"loops_per_second\": " << s.loopsPerSecond << "}"
                << (i + 1 < batch_samples.size() ? "," : "") << "\n";
        }
        out << "  ],\n  \"mrt\": [\n";
        for (std::size_t i = 0; i < mrt_samples.size(); ++i) {
            const auto& s = mrt_samples[i];
            out << "    {\"name\": \"" << s.name << "\", \"calls\": "
                << s.operations << ", \"coverage\": " << s.coverage
                << ", \"wall_seconds\": " << s.wallSeconds
                << ", \"calls_per_second\": " << s.perSecond << "}"
                << (i + 1 < mrt_samples.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
    }
    std::cout << "\nwrote " << out_path << "\n";

    // --- Regression gate against the checked-in baseline ---------------
    if (!baseline_path.empty()) {
        const std::string baseline_text = readFile(baseline_path);
        const double tolerance = 0.90; // fail on >10% regression
        int regressions = 0;
        auto check = [&](const std::string& name, double current,
                         double baseline) {
            if (baseline <= 0.0)
                return;
            if (current < tolerance * baseline) {
                std::cerr << "perf regression: " << name << " "
                          << support::formatDouble(current, 0) << " vs "
                          << support::formatDouble(baseline, 0)
                          << " baseline ("
                          << support::formatDouble(
                                 100.0 * (1.0 - current / baseline), 1)
                          << "% slower)\n";
                ++regressions;
            }
        };
        std::map<std::string, double> base_sched;
        for (const auto& object :
             parseObjectArray(baseline_text, "sched"))
            base_sched[object.at("name")] =
                std::atof(object.at("steps_per_second").c_str());
        for (const auto& s : sched_samples) {
            const auto it = base_sched.find(s.name);
            if (it != base_sched.end())
                check("sched " + s.name, s.stepsPerSecond, it->second);
        }
        std::map<std::string, double> base_batch;
        for (const auto& object :
             parseObjectArray(baseline_text, "batch"))
            base_batch[object.at("name")] =
                std::atof(object.at("loops_per_second").c_str());
        for (const auto& s : batch_samples) {
            const auto it = base_batch.find(s.name);
            if (it != base_batch.end())
                check(s.name, s.loopsPerSecond, it->second);
        }
        std::map<std::string, double> base_mrt;
        for (const auto& object : parseObjectArray(baseline_text, "mrt"))
            base_mrt[object.at("name")] =
                std::atof(object.at("calls_per_second").c_str());
        for (const auto& s : mrt_samples) {
            const auto it = base_mrt.find(s.name);
            if (it != base_mrt.end())
                check("mrt " + s.name, s.perSecond, it->second);
        }
        if (regressions != 0)
            return 1;
        std::cout << "baseline check passed (tolerance "
                  << support::formatDouble(100.0 * (1.0 - tolerance), 0)
                  << "%)\n";
    }

    if (gate_enforced && batch_scaling < 3.0) {
        std::cerr << "batch scaling gate failed: t8/t1 = "
                  << support::formatDouble(batch_scaling, 2)
                  << "x < 3.0x with " << hardware_threads
                  << " hardware threads\n";
        return 1;
    }
    return 0;
}
