/**
 * @file
 * Ablation: the forward-progress rule of §3.4 ("in the event that the
 * current operation was previously scheduled, it will not be rescheduled
 * at the same time. This avoids a situation where two operations keep
 * displacing each other endlessly"). With the rule disabled, forced
 * placements always pick Estart, so displacement ping-pong burns the
 * budget and more loops need larger IIs (or bigger budgets) to converge.
 */
#include <iostream>

#include "common.hpp"

int
main()
{
    using namespace ims;
    using namespace ims::bench;

    const auto machine = machine::cydra5();
    workloads::CorpusSpec spec;
    spec.perfectLoops = 400;
    spec.specLoops = 120;
    spec.lfkLoops = 27;
    const auto corpus = workloads::buildCorpus(spec);

    support::TextTable table(
        "Ablation: forward-progress rule in FindTimeSlot (BudgetRatio 2)");
    table.addHeader({"Rule", "Loops at MII (%)", "Mean II/MII",
                     "Steps/op", "Unschedules/op", "Mean attempts"});

    for (const bool rule : {true, false}) {
        sched::ScheduleOptions options;
        options.search.budgetRatio = 2.0;
        options.forwardProgressRule = rule;
        const auto records = measureCorpus(corpus, machine, options);
        int at_mii = 0;
        double ii_ratio = 0.0, attempts = 0.0;
        long long steps = 0, ops = 0, unschedules = 0;
        for (const auto& r : records) {
            at_mii += r.ii == r.mii;
            ii_ratio += static_cast<double>(r.ii) / r.mii;
            attempts += r.attempts;
            steps += r.stepsTotal;
            ops += r.ddgOps;
            unschedules += r.unschedules;
        }
        table.addRow({rule ? "on (paper)" : "off (always Estart)",
                      support::formatDouble(
                          100.0 * at_mii / records.size(), 1),
                      support::formatDouble(ii_ratio / records.size(), 4),
                      support::formatDouble(
                          static_cast<double>(steps) / ops, 2),
                      support::formatDouble(
                          static_cast<double>(unschedules) / ops, 2),
                      support::formatDouble(attempts / records.size(),
                                            2)});
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: without the rule, loops whose MII "
                 "needs displacement livelock inside an\nattempt, waste "
                 "the budget and land on larger IIs / more candidate "
                 "attempts.\n";
    return 0;
}
