/**
 * @file
 * Regenerates the behaviour of Figures 2-5 of the paper as a concrete,
 * runnable trace: procedure ModuloSchedule's II search (Fig. 2), function
 * IterativeSchedule's operation-by-operation loop (Fig. 3), FindTimeSlot's
 * slot selection and forced placements (Fig. 4), and the HeightR / Estart
 * equations (Fig. 5a/5b) evaluated numerically for every operation.
 *
 * Two traces are printed: a vectorizable loop that schedules in a single
 * topological pass (§3.2's "for such loops there is a very good chance of
 * scheduling them in one pass"), and a resource-tight loop where the
 * backtracking — displacement and rescheduling — is visible.
 */
#include <iostream>

#include "common.hpp"
#include "sched/attempt_feedback.hpp"
#include "sched/height_r.hpp"
#include "sched/iterative_scheduler.hpp"

namespace {

using namespace ims;
using namespace ims::bench;

void
traceLoop(const char* kernel_name, const machine::MachineModel& machine)
{
    const auto w = workloads::kernelByName(kernel_name);
    const auto g = graph::buildDepGraph(w.loop, machine);
    const auto sccs = graph::findSccs(g);
    const auto mii = mii::computeMii(w.loop, machine, g, sccs);

    std::cout << "\n" << w.loop.toString();
    std::cout << "ResMII = " << mii.resMii << ", MII = " << mii.mii
              << "\n";

    // Figure 5(a): HeightR for every vertex at II = MII.
    const auto heights = sched::computeHeightR(g, sccs, mii.mii);
    std::cout << "HeightR (Fig. 5a) at II=" << mii.mii << ":";
    for (int v = 0; v < g.numOps(); ++v)
        std::cout << "  op" << v << "=" << heights[v];
    std::cout << "  START=" << heights[g.start()]
              << "  STOP=" << heights[g.stop()] << "\n";

    // Figures 2-4: the II search with a per-step trace.
    std::vector<sched::TraceEvent> trace;
    sched::IterativeScheduleOptions inner;
    inner.trace = &trace;
    sched::IterativeScheduler scheduler(w.loop, machine, g, sccs, inner);

    const std::int64_t budget = 6 * (w.loop.size() + 2);
    for (int ii = mii.mii;; ++ii) {
        trace.clear();
        std::cout << "\nIterativeSchedule(II=" << ii << ", Budget="
                  << budget << ")   [Fig. 3]\n";
        const auto result = scheduler.trySchedule(ii, budget);
        for (const auto& e : trace) {
            std::cout << "  step " << e.step << ": ";
            if (e.op == g.start())
                std::cout << "START";
            else if (e.op == g.stop())
                std::cout << "STOP";
            else
                std::cout << "op" << e.op;
            std::cout << " (HeightR " << e.priority << ") Estart="
                      << e.estart << " window=[" << e.minTime << ","
                      << e.maxTime << "] -> t=" << e.slot << " alt#"
                      << e.alternative;
            if (e.forced)
                std::cout << "  FORCED [Fig. 4 fallback]";
            if (!e.displaced.empty()) {
                std::cout << "  displaces {";
                for (std::size_t k = 0; k < e.displaced.size(); ++k)
                    std::cout << (k ? "," : "") << "op"
                              << e.displaced[k];
                std::cout << "}";
            }
            std::cout << "\n";
        }
        if (result) {
            std::cout << "  => schedule found at II=" << ii << ", SL="
                      << result->scheduleLength << ", "
                      << result->stepsUsed << " steps, "
                      << result->unschedules << " displacements\n";
            break;
        }
        std::cout << "  => budget exhausted, II := II + 1   [Fig. 2]\n";
    }
}

} // namespace

int
main()
{
    const auto machine = machine::cydra5();
    std::cout << "Figures 2-5: the iterative modulo scheduling algorithm "
                 "in action\n";

    std::cout << "\n===== one-pass case (vectorizable, HeightR order is "
                 "topological) =====";
    traceLoop("daxpy", machine);

    std::cout << "\n===== backtracking case (block reservation tables "
                 "force displacement) =====";
    traceLoop("div_kernel", machine);
    return 0;
}
