/**
 * @file
 * Ablation: code-generation schemas (§1, citing Rau/Schlansker/Tirumalai
 * [36]). The same modulo schedule can be lowered three ways, trading
 * hardware support against static code size:
 *
 *  1. no hardware support: modulo variable expansion unrolls the kernel
 *     kmin times and explicit prologue/epilogue ramp the pipe;
 *  2. rotating registers only: the kernel needs no unrolling but still
 *     needs the prologue/epilogue;
 *  3. rotating registers + predicated execution: kernel-only code — "with
 *     the appropriate hardware support, there need be no code expansion
 *     whatsoever".
 *
 * The table reports static code size in VLIW instructions per schema for
 * the kernel library, relative to the single-iteration schedule length.
 */
#include <iostream>

#include "codegen/code_generator.hpp"
#include "codegen/kernel_only.hpp"
#include "common.hpp"

int
main()
{
    using namespace ims;
    using namespace ims::bench;

    const auto machine = machine::cydra5();
    sched::ScheduleOptions options;
    options.search.budgetRatio = 6.0;

    support::TextTable table(
        "static code size by code-generation schema (VLIW instructions)");
    table.addHeader({"Kernel", "SL", "MVE+pro/epi", "rot+pro/epi",
                     "kernel-only", "MVE expansion", "kernel-only "
                     "expansion"});

    double sum_mve = 0.0, sum_rot = 0.0, sum_kernel_only = 0.0,
           sum_sl = 0.0;
    for (const auto& w : workloads::kernelLibrary()) {
        const auto g = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(g);
        const auto outcome =
            sched::schedule(w.loop, machine, g, sccs, options);
        const auto code =
            codegen::generateCode(w.loop, machine, outcome.schedule);
        const auto kernel_only =
            codegen::generateKernelOnly(w.loop, outcome.schedule);

        const int ramp = code.prologue.numCycles();
        const int mve_size =
            ramp + code.kernelSection.numCycles() * code.mve.unroll +
            code.epilogue.numCycles();
        const int rot_size =
            ramp + code.kernelSection.numCycles() +
            code.epilogue.numCycles();
        const int ko_size = kernel_only.codeCycles();
        const int sl = outcome.schedule.scheduleLength;

        sum_mve += mve_size;
        sum_rot += rot_size;
        sum_kernel_only += ko_size;
        sum_sl += sl;

        table.addRow({w.loop.name(), std::to_string(sl),
                      std::to_string(mve_size), std::to_string(rot_size),
                      std::to_string(ko_size),
                      support::formatDouble(
                          static_cast<double>(mve_size) / sl, 2) + "x",
                      support::formatDouble(
                          static_cast<double>(ko_size) / sl, 2) + "x"});
    }
    table.addRow({"TOTAL", support::formatDouble(sum_sl, 0),
                  support::formatDouble(sum_mve, 0),
                  support::formatDouble(sum_rot, 0),
                  support::formatDouble(sum_kernel_only, 0),
                  support::formatDouble(sum_mve / sum_sl, 2) + "x",
                  support::formatDouble(sum_kernel_only / sum_sl, 2) +
                      "x"});
    table.print(std::cout);

    std::cout
        << "\nExpected shape: the kernel-only schema's code size equals "
           "the II — smaller than one\niteration's schedule (§1: \"with "
           "the appropriate hardware support, there need be no code\n"
           "expansion whatsoever\"); rotating registers alone already "
           "remove the kmin unrolling factor;\nall three remain far "
           "below the tens-of-copies replication of unroll-based "
           "schemes.\n";
    return 0;
}
