/**
 * @file
 * Ablation: the RecMII algorithm. §2.2 describes two approaches — the
 * Cydra 5 compiler's enumeration of all elementary circuits, and the
 * minimal cost-to-time-ratio (MinDist) search used in this paper, which
 * becomes practical when applied per strongly connected component. This
 * bench verifies all three agree and compares their cost (MinDist
 * inner-loop steps / circuits touched) over the corpus.
 */
#include <chrono>
#include <iostream>

#include "common.hpp"
#include "graph/circuits.hpp"
#include "mii/rec_mii.hpp"

int
main()
{
    using namespace ims;
    using namespace ims::bench;
    using Clock = std::chrono::steady_clock;

    const auto machine = machine::cydra5();
    const auto corpus = workloads::buildCorpus();

    long long per_scc_steps = 0, whole_graph_steps = 0;
    double per_scc_ms = 0.0, whole_ms = 0.0, circuits_ms = 0.0;
    long long circuits_total = 0;
    int disagreements = 0;

    for (const auto& w : corpus) {
        const auto g = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(g);

        support::Counters c1, c2;
        auto t0 = Clock::now();
        const int per_scc = mii::computeRecMiiPerScc(g, sccs, 1, &c1);
        auto t1 = Clock::now();
        const int whole = mii::computeRecMiiWholeGraph(g, 1, &c2);
        auto t2 = Clock::now();
        const int by_circuits = mii::computeRecMiiFromCircuits(g);
        auto t3 = Clock::now();
        circuits_total += static_cast<long long>(
            graph::enumerateElementaryCircuits(g).size());

        per_scc_steps += static_cast<long long>(c1.minDistInnerSteps);
        whole_graph_steps += static_cast<long long>(c2.minDistInnerSteps);
        per_scc_ms += std::chrono::duration<double, std::milli>(t1 - t0)
                          .count();
        whole_ms += std::chrono::duration<double, std::milli>(t2 - t1)
                        .count();
        circuits_ms += std::chrono::duration<double, std::milli>(t3 - t2)
                           .count();
        disagreements += (per_scc != whole) + (per_scc != by_circuits);
    }

    support::TextTable table("Ablation: RecMII algorithm (" +
                             std::to_string(corpus.size()) + " loops)");
    table.addHeader({"Algorithm", "MinDist inner steps", "Wall time (ms)",
                     "Notes"});
    table.addRow({"per-SCC MinDist (the paper's)",
                  std::to_string(per_scc_steps),
                  support::formatDouble(per_scc_ms, 1),
                  "search seeded SCC-to-SCC"});
    table.addRow({"whole-graph MinDist", std::to_string(whole_graph_steps),
                  support::formatDouble(whole_ms, 1),
                  "O(N^3) on the full graph per candidate II"});
    table.addRow({"elementary circuits (Cydra 5)", "-",
                  support::formatDouble(circuits_ms, 1),
                  std::to_string(circuits_total) + " circuits touched"});
    table.print(std::cout);

    std::cout << "\nAll three algorithms agreed on every loop: "
              << (disagreements == 0 ? "yes" : "NO (bug!)") << "\n";
    std::cout << "Expected shape: per-SCC MinDist needs a small fraction "
                 "of the whole-graph inner steps\n(§2.2: \"there are very "
                 "few SCCs that are large, and O(N^3) is quite a bit more "
                 "tolerable for\nthe small values of N encountered\"); "
                 "circuit enumeration is fast here but is worst-case\n"
                 "exponential in pathological dependence graphs.\n";
    return disagreements == 0 ? 0 : 1;
}
