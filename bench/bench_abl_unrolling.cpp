/**
 * @file
 * Ablation: modulo scheduling vs "unroll-before-scheduling" (§1, §4.3,
 * §5). An unroll-before-scheduling scheme unrolls the loop k times and
 * applies acyclic list scheduling to the unrolled body, keeping a
 * scheduling barrier at the back-edge: its per-iteration cost is
 * SL(unrolled)/k, which approaches but cannot beat the modulo II, and
 * its code size grows linearly with k ("typically unroll the loop body
 * many tens of times"). The second table shows the legitimate use of the
 * same transform the paper *does* endorse: unrolling before *modulo*
 * scheduling to recover fractional MIIs (§2).
 */
#include <iostream>

#include "codegen/code_generator.hpp"
#include "common.hpp"
#include "transform/unroll.hpp"

namespace {

using namespace ims;
using namespace ims::bench;

} // namespace

int
main()
{
    const auto machine = machine::cydra5();
    const int factors[] = {1, 2, 4, 8, 16, 32};

    const char* kernels[] = {"daxpy", "hydro_frag", "stencil3",
                             "dot_bs4", "state_frag", "multi_array"};

    support::TextTable table(
        "unroll-before-scheduling (list) vs modulo scheduling: "
        "per-original-iteration cost in cycles");
    std::vector<std::string> header = {"Kernel", "modulo II"};
    for (int f : factors)
        header.push_back("unroll x" + std::to_string(f));
    header.push_back("code x32 / modulo code");
    table.addHeader(header);

    for (const char* name : kernels) {
        const auto w = workloads::kernelByName(name);
        sched::ScheduleOptions options;
        options.search.budgetRatio = 6.0;
        const auto record = measureLoop(w, machine, options);

        std::vector<std::string> row = {name,
                                        std::to_string(record.ii)};
        double unrolled_code_cycles = 0;
        for (int f : factors) {
            const auto unrolled = transform::unrollLoop(w.loop, f);
            const auto g = graph::buildDepGraph(unrolled, machine);
            const auto list = sched::listSchedule(unrolled, machine, g);
            row.push_back(support::formatDouble(
                static_cast<double>(list.scheduleLength) / f, 2));
            if (f == 32)
                unrolled_code_cycles = list.scheduleLength;
        }
        // Modulo code size: prologue + kernel(s) + epilogue cycles.
        const auto g = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(g);
        const auto outcome =
            sched::schedule(w.loop, machine, g, sccs, options);
        const auto code =
            codegen::generateCode(w.loop, machine, outcome.schedule);
        const double modulo_code =
            code.prologue.numCycles() +
            code.kernelSection.numCycles() * code.mve.unroll +
            code.epilogue.numCycles();
        row.push_back(support::formatDouble(
            unrolled_code_cycles / modulo_code, 2));
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout
        << "\nExpected shape: the unrolled list schedule's per-iteration "
           "cost approaches the modulo II\nfrom above as k grows but "
           "never beats it (the back-edge barrier drains the pipeline "
           "every\nk iterations), while its code size keeps growing — "
           "the paper's argument that an unrolling\nscheme competitive "
           "with iterative modulo scheduling would need enormous "
           "replication.\n";

    // Part 2: unrolling before MODULO scheduling to recover fractional
    // MIIs (§2: round-up degradation).
    support::TextTable frac(
        "unroll-before-MODULO-scheduling: fractional-MII recovery");
    frac.addHeader({"Kernel", "ResMII x1", "II x1", "II x2 (per iter)",
                    "II x4 (per iter)"});
    for (const char* name : {"dual_store", "daxpy", "vec_scale"}) {
        const auto w = workloads::kernelByName(name);
        std::vector<std::string> row = {name};
        {
            sched::ScheduleOptions options;
            options.search.budgetRatio = 6.0;
            const auto record = measureLoop(w, machine, options);
            row.push_back(std::to_string(record.resMii));
            row.push_back(std::to_string(record.ii));
        }
        for (int f : {2, 4}) {
            const auto unrolled = transform::unrollLoop(w.loop, f);
            sched::ScheduleOptions options;
            options.search.budgetRatio = 6.0;
            const auto g = graph::buildDepGraph(unrolled, machine);
            const auto sccs = graph::findSccs(g);
            const auto outcome =
                sched::schedule(unrolled, machine, g, sccs, options);
            row.push_back(support::formatDouble(
                static_cast<double>(outcome.schedule.ii) / f, 2));
        }
        frac.addRow(row);
    }
    frac.print(std::cout);
    std::cout << "\n(dual_store: 3 memory references over 2 ports is a "
                 "rational ResMII of 1.5; unrolling by 2\nrecovers it "
                 "from the rounded-up II of 2 — §2's reason to unroll "
                 "before modulo scheduling.\ndaxpy stays at 2.00: its "
                 "shared source buses impose an integral bound of 2 per "
                 "iteration.)\n";
    return 0;
}
