/**
 * @file
 * Regenerates Table 1 of the paper: the formulae for the delay on
 * dependence edges, in both the exact (classical VLIW) and conservative
 * (superscalar) forms, evaluated over a sweep of predecessor/successor
 * latencies so the negative-delay cases the text highlights are visible.
 */
#include <iostream>

#include "graph/delay_model.hpp"
#include "support/table.hpp"

namespace {

using namespace ims;
using graph::DelayMode;
using graph::DepKind;

} // namespace

int
main()
{
    std::cout << "Table 1: formulae for calculating the delay on "
                 "dependence edges\n";

    support::TextTable formulas("symbolic form");
    formulas.addHeader({"Type of dependence", "Delay (exact)",
                        "Conservative delay"});
    formulas.addRow({"Flow dependence", "Latency(pred)", "Latency(pred)"});
    formulas.addRow({"Anti-dependence", "1 - Latency(succ)", "0"});
    formulas.addRow({"Output dependence",
                     "1 + Latency(pred) - Latency(succ)",
                     "Latency(pred)"});
    formulas.print(std::cout);

    support::TextTable sweep(
        "evaluated over Cydra-5-style latencies (pred, succ)");
    sweep.addHeader({"L(pred)", "L(succ)", "flow", "anti", "output",
                     "flow/c", "anti/c", "output/c"});
    const int latencies[] = {1, 3, 4, 5, 20};
    for (int lp : latencies) {
        for (int ls : latencies) {
            sweep.addRow({
                std::to_string(lp),
                std::to_string(ls),
                std::to_string(dependenceDelay(DepKind::kFlow, lp, ls,
                                               DelayMode::kExact)),
                std::to_string(dependenceDelay(DepKind::kAnti, lp, ls,
                                               DelayMode::kExact)),
                std::to_string(dependenceDelay(DepKind::kOutput, lp, ls,
                                               DelayMode::kExact)),
                std::to_string(dependenceDelay(DepKind::kFlow, lp, ls,
                                               DelayMode::kConservative)),
                std::to_string(dependenceDelay(DepKind::kAnti, lp, ls,
                                               DelayMode::kConservative)),
                std::to_string(dependenceDelay(DepKind::kOutput, lp, ls,
                                               DelayMode::kConservative)),
            });
        }
    }
    sweep.print(std::cout);

    std::cout << "\nNote: with non-unit architectural latencies the exact "
                 "anti/output delays go negative (the\npredecessor only "
                 "needs to start no later than / finish before the "
                 "successor finishes),\nwhich the conservative column "
                 "clamps for superscalar processors.\n";
    return 0;
}
