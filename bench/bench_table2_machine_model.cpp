/**
 * @file
 * Regenerates Table 2 of the paper: the machine model used by the
 * scheduler in the experiments (functional units, operation repertoire,
 * latencies), printed from the encoded Cydra-5-like description together
 * with the reservation-table detail Table 2 abstracts away.
 */
#include <iostream>

#include "machine/cydra5.hpp"
#include "support/table.hpp"

int
main()
{
    using namespace ims;
    const auto machine = machine::cydra5();

    std::cout << "Table 2: relevant details of the machine model used by "
                 "the scheduler\n";

    support::TextTable table("functional units and latencies");
    table.addHeader({"Functional unit", "Number", "Operations", "Latency"});
    table.addRow({"Memory port", "2", "load", "20"});
    table.addRow({"", "", "store", "1"});
    table.addRow({"", "", "predicate set/clear", "2"});
    table.addRow({"Address ALU", "2", "address add/subtract", "3"});
    table.addRow({"Adder", "1",
                  "int/flp add, sub, min, max, abs, compare, select,"
                  " copy*", "4"});
    table.addRow({"Multiplier", "1", "int/flp multiply", "5"});
    table.addRow({"", "", "int/flp divide", "22"});
    table.addRow({"", "", "flp square root", "26"});
    table.addRow({"Instruction unit", "1", "loop-closing branch", "1"});
    table.print(std::cout);
    std::cout << "(*copy may also execute on either address ALU: the "
                 "multiple-alternatives case of section 2.1.)\n";
    std::cout << "(The paper substitutes a 20-cycle load for the Cydra 5 "
                 "compiler's 26 cycles; latencies Table 2's\nscan leaves "
                 "garbled are chosen per DESIGN.md substitution #3.)\n\n";

    std::cout << "Full encoded model with reservation tables:\n\n"
              << machine.toString();
    return 0;
}
