/**
 * @file
 * Ablation: the dependence delay model (Table 1). Exact VLIW delays allow
 * negative anti/output delays; the conservative model (for superscalars)
 * clamps them. On EVR-form (DSA) code the difference only shows through
 * memory anti/output dependences; on single-register code (dsaForm off)
 * the register anti- and output dependences reappear and the two columns
 * of Table 1 visibly move the MII. The single-register study uses
 * dedicated distance<=1 loops (that form cannot express the
 * back-substituted corpus).
 */
#include <iostream>

#include "common.hpp"
#include "ir/loop_builder.hpp"

namespace {

using namespace ims;
using namespace ims::bench;
using ir::Opcode;

/** Raw (distance-1) loops expressible in single-register form. */
std::vector<ir::Loop>
rawLoops()
{
    std::vector<ir::Loop> loops;
    {
        // y[i] = a * x[i] with raw address/counter recurrences.
        ir::LoopBuilder b("raw_scale");
        b.liveIn("a");
        b.recurrence("ax");
        b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 1), b.imm(8)});
        b.load("x", "X", 0, b.reg("ax"));
        b.op(Opcode::kMul, "t", {b.reg("a"), b.reg("x")});
        b.store("Y", 0, b.reg("ax"), b.reg("t"));
        b.closeLoop();
        loops.push_back(b.build());
    }
    {
        // s += x[i]*y[i], raw.
        ir::LoopBuilder b("raw_dot");
        b.recurrence("ax").recurrence("s");
        b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 1), b.imm(8)});
        b.load("x", "X", 0, b.reg("ax"));
        b.load("y", "Y", 0, b.reg("ax"));
        b.op(Opcode::kMul, "t", {b.reg("x"), b.reg("y")});
        b.op(Opcode::kAdd, "s", {b.reg("s", 1), b.reg("t")});
        b.closeLoop();
        loops.push_back(b.build());
    }
    {
        // First-order recurrence, raw.
        ir::LoopBuilder b("raw_rec1");
        b.liveIn("a");
        b.recurrence("ax").recurrence("x");
        b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 1), b.imm(8)});
        b.load("bv", "B", 0, b.reg("ax"));
        b.op(Opcode::kMul, "m", {b.reg("a"), b.reg("x", 1)});
        b.op(Opcode::kAdd, "x", {b.reg("m"), b.reg("bv")});
        b.store("X", 0, b.reg("ax"), b.reg("x"));
        b.closeLoop();
        loops.push_back(b.build());
    }
    {
        // Three-point stencil, raw control.
        ir::LoopBuilder b("raw_stencil");
        b.liveIn("w");
        b.recurrence("ax");
        b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 1), b.imm(8)});
        b.load("xm", "X", -1, b.reg("ax"));
        b.load("x0", "X", 0, b.reg("ax"));
        b.load("xp", "X", 1, b.reg("ax"));
        b.op(Opcode::kAdd, "s1", {b.reg("xm"), b.reg("x0")});
        b.op(Opcode::kAdd, "s2", {b.reg("s1"), b.reg("xp")});
        b.op(Opcode::kMul, "y", {b.reg("w"), b.reg("s2")});
        b.store("Y", 0, b.reg("ax"), b.reg("y"));
        b.closeLoop();
        loops.push_back(b.build());
    }
    return loops;
}

struct Aggregate
{
    double mean_mii = 0.0;
    double mean_ii = 0.0;
    int count = 0;
};

Aggregate
run(const std::vector<ir::Loop>& loops,
    const machine::MachineModel& machine, graph::DelayMode mode,
    bool dsa_form)
{
    Aggregate agg;
    for (const auto& loop : loops) {
        graph::GraphOptions graph_options;
        graph_options.delayMode = mode;
        graph_options.dsaForm = dsa_form;
        const auto g = graph::buildDepGraph(loop, machine, graph_options);
        const auto sccs = graph::findSccs(g);
        sched::ScheduleOptions options;
        options.search.budgetRatio = 6.0;
        const auto outcome =
            sched::schedule(loop, machine, g, sccs, options);
        agg.mean_mii += outcome.mii;
        agg.mean_ii += outcome.schedule.ii;
        ++agg.count;
    }
    agg.mean_mii /= agg.count;
    agg.mean_ii /= agg.count;
    return agg;
}

} // namespace

int
main()
{
    const auto machine = machine::cydra5();

    // Part 1: DSA/EVR corpus — the delay model barely matters.
    workloads::CorpusSpec spec;
    spec.perfectLoops = 400;
    spec.specLoops = 120;
    spec.lfkLoops = 27;
    const auto corpus = workloads::buildCorpus(spec);
    std::vector<ir::Loop> dsa_loops;
    for (const auto& w : corpus)
        dsa_loops.push_back(w.loop);

    support::TextTable table("Ablation: Table 1 delay model");
    table.addHeader({"Form", "Delay model", "Loops", "Mean MII",
                     "Mean II"});
    for (const auto mode :
         {graph::DelayMode::kExact, graph::DelayMode::kConservative}) {
        const auto agg = run(dsa_loops, machine, mode, true);
        table.addRow({"DSA/EVR (paper)",
                      mode == graph::DelayMode::kExact
                          ? "exact (VLIW)"
                          : "conservative (superscalar)",
                      std::to_string(agg.count),
                      support::formatDouble(agg.mean_mii, 3),
                      support::formatDouble(agg.mean_ii, 3)});
    }

    // Part 2: single-register form on raw (distance<=1) loops.
    const auto raw = rawLoops();
    for (const bool dsa : {true, false}) {
        for (const auto mode :
             {graph::DelayMode::kExact, graph::DelayMode::kConservative}) {
            const auto agg = run(raw, machine, mode, dsa);
            table.addRow({dsa ? "raw loops, DSA/EVR"
                              : "raw loops, single-register",
                          mode == graph::DelayMode::kExact
                              ? "exact (VLIW)"
                              : "conservative (superscalar)",
                          std::to_string(agg.count),
                          support::formatDouble(agg.mean_mii, 3),
                          support::formatDouble(agg.mean_ii, 3)});
        }
    }
    table.print(std::cout);

    std::cout
        << "\nExpected shape: on DSA/EVR code the two delay models are "
           "nearly indistinguishable\n(anti/output dependences only arise "
           "through memory). On single-register code the\nregister anti- "
           "and output dependences come back; the conservative model's "
           "clamped\n(non-negative) delays tighten recurrences further "
           "and raise the MII — the reason §2.2\nassumes anti/output "
           "dependences are eliminated by EVRs / dynamic single "
           "assignment\nbefore scheduling.\n";
    return 0;
}
