/**
 * @file
 * Whole-program compilation bench: drive the ProgramCompiler over the
 * named program corpus, measure end-to-end compile throughput, and gate
 * the pipeline-compression contract — overlapping the prologue and
 * epilogue with the adjacent blocks must never cost cycles at any trip
 * count, and must strictly win on at least one corpus program. Each
 * compiled program is also checked against the sequential reference
 * once, so the numbers in the report are from executions known correct.
 *
 * Usage: bench_program_compile [--repeat N] [--trip N] [--out <file|->]
 *        (defaults: 5 repetitions, trip 17, stdout)
 *
 * Exit status: 0 = all gates passed, 1 = a gate failed.
 */
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "machine/cydra5.hpp"
#include "program/program_compiler.hpp"
#include "program/program_executor.hpp"
#include "support/table.hpp"
#include "workloads/programs.hpp"

namespace {

using namespace ims;

struct ProgramRow
{
    std::string name;
    int ii = 0;
    int stages = 0;
    int prologueOverlap = 0;
    int epilogueOverlap = 0;
    long long naiveCycles = 0;
    long long compressedCycles = 0;
    bool equivalent = false;
};

} // namespace

int
main(int argc, char** argv)
{
    int repeat = 5;
    int trip = 17;
    std::string out = "-";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc)
            repeat = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--trip") == 0 && i + 1 < argc)
            trip = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out = argv[++i];
        else {
            std::cerr << "usage: bench_program_compile [--repeat N] "
                         "[--trip N] [--out <file|->]\n";
            return 2;
        }
    }
    if (repeat <= 0 || trip <= 0) {
        std::cerr << "bench_program_compile: --repeat and --trip need "
                     "positive values\n";
        return 2;
    }

    const auto machine = machine::cydra5();
    const auto corpus = workloads::programLibrary();
    const program::ProgramCompiler compiler(machine);

    // Throughput: every corpus program compiled end to end (block list
    // scheduling, modulo scheduling with II search, EC/LC lowering,
    // compression analysis), repeated to stabilize the clock.
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeat; ++r) {
        for (const auto& entry : corpus) {
            const auto result = compiler.compile(entry.program);
            if (!result.ok()) {
                std::cerr << entry.program.name
                          << ": compile failed: " << result.firstError()
                          << "\n";
                return 1;
            }
        }
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const double programs_per_s =
        seconds > 0.0 ? repeat * corpus.size() / seconds : 0.0;

    std::vector<ProgramRow> rows;
    bool no_regression = true;
    int wins = 0;
    int equivalence_failures = 0;
    for (const auto& entry : corpus) {
        const auto result = compiler.compile(entry.program);
        const auto& compiled = *result.compiled;
        ProgramRow row;
        row.name = entry.program.name;
        row.ii = compiled.loop.kernel.ii;
        row.stages = compiled.loop.kernel.stageCount;
        row.prologueOverlap = compiled.prologueOverlap;
        row.epilogueOverlap = compiled.epilogueOverlap;
        row.naiveCycles = compiled.naiveCycles(trip);
        row.compressedCycles = compiled.compiledCycles(trip);

        // The compression contract, at the reporting trip and at the
        // degenerate counts where the runtime clamp engages.
        for (const int t : {0, 1, 2, trip}) {
            if (compiled.compiledCycles(t) > compiled.naiveCycles(t))
                no_regression = false;
        }
        if (row.compressedCycles < row.naiveCycles)
            ++wins;

        const auto spec =
            program::makeProgramSpec(entry.program, trip, 2026);
        const auto expect =
            program::runProgramSequential(entry.program, spec);
        const auto actual = program::runProgramCompiled(compiled, spec);
        row.equivalent =
            program::describeStateDifference(expect, actual).empty();
        if (!row.equivalent)
            ++equivalence_failures;
        rows.push_back(row);
    }

    support::TextTable table("program compilation (trip " +
                             std::to_string(trip) + ")");
    table.addHeader({"program", "II", "stages", "overlap pro/epi",
                     "naive cyc", "compressed cyc", "equiv"});
    for (const auto& row : rows) {
        table.addRow({row.name, std::to_string(row.ii),
                      std::to_string(row.stages),
                      std::to_string(row.prologueOverlap) + "/" +
                          std::to_string(row.epilogueOverlap),
                      std::to_string(row.naiveCycles),
                      std::to_string(row.compressedCycles),
                      row.equivalent ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::cout << "\ncompile throughput: " << programs_per_s
              << " programs/s (" << corpus.size() << " programs x "
              << repeat << " repetitions in " << seconds << " s)\n";

    const bool strict_win = wins > 0;
    std::ostringstream json;
    json << "{\"tool\":\"bench_program_compile\",\"programs\":"
         << corpus.size() << ",\"repeat\":" << repeat
         << ",\"trip\":" << trip << ",\"seconds\":" << seconds
         << ",\"programs_per_s\":" << programs_per_s
         << ",\"compression_wins\":" << wins
         << ",\"equivalence_failures\":" << equivalence_failures
         << ",\"gates\":{\"no_regression\":"
         << (no_regression ? "true" : "false")
         << ",\"strict_win\":" << (strict_win ? "true" : "false")
         << ",\"equivalence\":"
         << (equivalence_failures == 0 ? "true" : "false")
         << "},\"results\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& row = rows[i];
        json << (i ? "," : "") << "{\"program\":\"" << row.name
             << "\",\"ii\":" << row.ii << ",\"stages\":" << row.stages
             << ",\"prologue_overlap\":" << row.prologueOverlap
             << ",\"epilogue_overlap\":" << row.epilogueOverlap
             << ",\"naive_cycles\":" << row.naiveCycles
             << ",\"compressed_cycles\":" << row.compressedCycles
             << ",\"equivalent\":" << (row.equivalent ? "true" : "false")
             << "}";
    }
    json << "]}";
    if (out == "-") {
        std::cout << json.str() << "\n";
    } else {
        std::ofstream stream(out);
        stream << json.str() << "\n";
        std::cout << "report written to " << out << "\n";
    }

    if (!no_regression) {
        std::cerr << "bench_program_compile: compression increased the "
                     "cycle count on a corpus program\n";
        return 1;
    }
    if (!strict_win) {
        std::cerr << "bench_program_compile: compression won on no "
                     "corpus program\n";
        return 1;
    }
    if (equivalence_failures != 0) {
        std::cerr << "bench_program_compile: compiled execution diverged "
                     "from the sequential reference\n";
        return 1;
    }
    std::cout << "gates: no_regression, strict_win, equivalence — all "
                 "passed\n";
    return 0;
}
