/**
 * @file
 * Regenerates Figure 1 of the paper: the reservation tables for a
 * pipelined add and a pipelined multiply on shared source/result buses,
 * together with the collision analysis the surrounding text walks
 * through ("an ALU operation and a multiply cannot be scheduled for
 * issue at the same time ... an add may not be issued two cycles after a
 * multiply").
 */
#include <iostream>
#include <string>
#include <vector>

#include "machine/reservation_table.hpp"
#include "support/table.hpp"

namespace {

using namespace ims;
using machine::ReservationTable;

/** Resource ids laid out exactly like the Figure 1 columns. */
const std::vector<std::string> kColumns = {
    "Src bus A", "Src bus B", "ALU st 1", "ALU st 2",
    "Mult st 1", "Mult st 2", "Mult st 3", "Mult st 4", "Result bus"};

void
printFigureTable(const std::string& title, const ReservationTable& table)
{
    support::TextTable out(title);
    std::vector<std::string> header = {"Time"};
    header.insert(header.end(), kColumns.begin(), kColumns.end());
    out.addHeader(header);
    for (int t = 0; t < table.length(); ++t) {
        std::vector<std::string> row = {std::to_string(t)};
        for (std::size_t r = 0; r < kColumns.size(); ++r) {
            bool used = false;
            for (const auto& use : table.uses())
                used = used || (use.time == t &&
                                use.resource == static_cast<int>(r));
            row.push_back(used ? "X" : "");
        }
        out.addRow(row);
    }
    out.print(std::cout);
    std::cout << "table kind: " << machine::tableKindName(table.kind())
              << "\n";
}

} // namespace

int
main()
{
    std::cout << "Figure 1: reservation tables for (a) a pipelined add "
                 "and (b) a pipelined multiply\n";

    // Figure 1(a): 4-cycle add — source buses at issue, two ALU stages,
    // result bus on the last execution cycle.
    ReservationTable add;
    add.addUse(0, 0);
    add.addUse(0, 1);
    add.addUse(1, 2);
    add.addUse(2, 3);
    add.addUse(3, 8);

    // Figure 1(b): 6-cycle multiply — source buses at issue, four
    // multiplier stages, result bus on the last execution cycle.
    ReservationTable mul;
    mul.addUse(0, 0);
    mul.addUse(0, 1);
    mul.addUse(1, 4);
    mul.addUse(2, 5);
    mul.addUse(3, 6);
    mul.addUse(4, 7);
    mul.addUse(5, 8);

    printFigureTable("(a) pipelined add", add);
    printFigureTable("(b) pipelined multiply", mul);

    std::cout << "\nCollision analysis (paper, below Figure 1):\n";
    std::cout << "  add and multiply issued in the same cycle: "
              << (add.collidesWith(mul, 0) ? "COLLIDE (source buses)"
                                           : "ok")
              << "\n";
    for (int delta = 1; delta <= 6; ++delta) {
        std::cout << "  multiply issued " << delta
                  << " cycle(s) after an add: "
                  << (mul.collidesWith(add, delta) ? "COLLIDE" : "ok")
                  << "\n";
    }
    for (int delta = 1; delta <= 6; ++delta) {
        std::cout << "  add issued " << delta
                  << " cycle(s) after a multiply: "
                  << (add.collidesWith(mul, delta)
                          ? "COLLIDE (result bus)"
                          : "ok")
                  << "\n";
    }
    return 0;
}
