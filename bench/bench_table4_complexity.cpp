/**
 * @file
 * Regenerates Table 4 of the paper: the worst-case and empirical
 * computational complexity of each sub-activity of iterative modulo
 * scheduling, with the least-mean-squares fits of §4.4:
 *
 *   E (edges)                ~ 3.0036 N
 *   SCC identification       O(N + E) -> O(N)
 *   ResMII calculation       O(N)
 *   MII calculation          ~ 11.9133 N + 3.0474 (residual sigma 1842.7:
 *                              "largely uncorrelated with N")
 *   HeightR calculation      ~ 4.5021 N
 *   Estart predecessors      ~ 3.3321 N
 *   FindTimeSlot probes      ~ 0.0587 N^2 + 0.2001 N + 0.5000
 *
 * Counters are gathered per loop over the whole corpus at BudgetRatio 2
 * and fitted against the loop size N.
 */
#include <iostream>

#include "common.hpp"
#include "support/regression.hpp"

int
main()
{
    using namespace ims;
    using namespace ims::bench;

    const auto machine = machine::cydra5();
    const auto corpus = workloads::buildCorpus();
    sched::ScheduleOptions options;
    options.search.budgetRatio = 2.0;

    const auto records = measureCorpus(corpus, machine, options);

    std::vector<double> n;
    std::vector<double> edges, scc, resmii, mindist, heightr, estart,
        findslot, steps;
    for (const auto& r : records) {
        n.push_back(r.ops);
        edges.push_back(r.edges);
        scc.push_back(static_cast<double>(r.counters.sccEdgeVisits));
        resmii.push_back(
            static_cast<double>(r.counters.resMiiInspections));
        mindist.push_back(
            static_cast<double>(r.counters.minDistInnerSteps));
        heightr.push_back(
            static_cast<double>(r.counters.heightRInnerSteps));
        estart.push_back(
            static_cast<double>(r.counters.estartPredecessorVisits));
        findslot.push_back(
            static_cast<double>(r.counters.findTimeSlotProbes));
        steps.push_back(static_cast<double>(r.counters.scheduleSteps));
    }

    const auto fit_e = support::fitProportional(n, edges);
    const auto fit_scc = support::fitProportional(n, scc);
    const auto fit_res = support::fitProportional(n, resmii);
    const auto fit_mii = support::fitLinear(n, mindist);
    const auto fit_height = support::fitProportional(n, heightr);
    const auto fit_estart = support::fitProportional(n, estart);
    const auto fit_slot = support::fitPolynomial(n, findslot, 2);
    const auto fit_steps = support::fitProportional(n, steps);

    support::TextTable table(
        "Table 4: computational complexity of the sub-activities of "
        "iterative modulo scheduling");
    table.addHeader({"Activity", "Worst-case", "Empirical", "LMS fit",
                     "Paper's fit"});
    table.addRow({"Dependence edges E", "O(N^2)", "O(N)",
                  fit_e.toString(), "3.0036N"});
    table.addRow({"SCC identification", "O(N+E)", "O(N)",
                  fit_scc.toString(), "O(N)"});
    table.addRow({"ResMII calculation", "O(N)", "O(N)",
                  fit_res.toString(), "O(N)"});
    table.addRow({"MII calculation (MinDist inner loop)", "O(N^3)",
                  "O(N)", fit_mii.toString(),
                  "11.9133N + 3.0474"});
    table.addRow({"HeightR calculation", "O(NE)", "O(N)",
                  fit_height.toString(), "4.5021N"});
    table.addRow({"Estart (predecessor visits)", "O(NE)", "O(N)",
                  fit_estart.toString(), "3.3321N"});
    table.addRow({"FindTimeSlot (slot probes)", "NP-complete*",
                  "O(N^2)", fit_slot.toString(),
                  "0.0587N^2 + 0.2001N + 0.5000"});
    table.addRow({"Operation scheduling steps", "NP-complete*", "O(N)",
                  fit_steps.toString(), "~1.59N at BR 2"});
    table.print(std::cout);

    std::cout << "(*iterative scheduling is NP-complete in the worst "
                 "case; the budget bounds it in practice.)\n";
    std::cout << "\nMinDist residual standard deviation: "
              << support::formatDouble(fit_mii.residualStdDev, 1)
              << " (paper: 1842.7 — larger than the prediction over the "
                 "measured range,\n i.e. the MII cost is largely "
                 "uncorrelated with N; driven by SCC structure instead)\n";
    std::cout
        << "\nConclusion (paper §4.4): no sub-activity exceeds O(N^2) "
           "empirically, so the statistical\ncomplexity of iterative "
           "modulo scheduling is O(N^2).\n";
    return 0;
}
