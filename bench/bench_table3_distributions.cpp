/**
 * @file
 * Regenerates Table 3 of the paper ("Distribution statistics for various
 * measurements") over the 1327-loop synthetic corpus, plus the in-text
 * statistics of sections 4.2/4.3: the cumulative RecMII-ResMII fractions,
 * SCC-size skew, the DeltaII histogram (96% of loops at the MII; the
 * 32/8/11 split above it), and the aggregate execution-time dilation
 * (paper: 2.8% over the lower bound at BudgetRatio 6).
 *
 * Setup mirrors §4: Cydra-5-like machine, BudgetRatio 6 ("well above the
 * largest value actually needed"), candidate IIs searched sequentially
 * upward from the MII.
 */
#include <iostream>
#include <map>

#include "common.hpp"

int
main()
{
    using namespace ims;
    using namespace ims::bench;

    const auto machine = machine::cydra5();
    const auto corpus = workloads::buildCorpus();

    sched::ScheduleOptions options;
    options.search.budgetRatio = 6.0; // the paper's quality-study setting

    std::cout << "Scheduling " << corpus.size() << " loops ("
              << "perfect+spec+lfk) on " << machine.name()
              << " at BudgetRatio " << options.search.budgetRatio << "...\n";
    const auto records = measureCorpus(corpus, machine, options);

    // ---- Table 3 proper. --------------------------------------------
    std::vector<double> ops, mii, min_sl, rec_minus_res, non_trivial,
        nodes_per_scc, delta_ii, ii_over_mii, sl_ratio, steps_ratio;
    for (const auto& r : records) {
        ops.push_back(r.ops);
        mii.push_back(r.mii);
        min_sl.push_back(r.minScheduleLength);
        rec_minus_res.push_back(
            std::max(0, r.trueRecMii - r.resMii));
        non_trivial.push_back(r.nonTrivialSccs);
        for (int size : r.sccSizes)
            nodes_per_scc.push_back(size);
        delta_ii.push_back(r.ii - r.mii);
        ii_over_mii.push_back(static_cast<double>(r.ii) / r.mii);
        sl_ratio.push_back(static_cast<double>(r.scheduleLength) /
                           r.minScheduleLength);
        steps_ratio.push_back(static_cast<double>(r.stepsLastAttempt) /
                              r.ddgOps);
    }

    // Execution-time ratio over the executed subset only (§4.3).
    std::vector<double> exec_ratio;
    double total_actual = 0.0, total_bound = 0.0;
    int executed = 0;
    for (std::size_t k = 0; k < records.size(); ++k) {
        const auto profile =
            workloads::syntheticProfile(static_cast<int>(k));
        if (!profile.executed)
            continue;
        ++executed;
        const auto t = executionTimes(records[k], profile);
        exec_ratio.push_back(t.actual / t.bound);
        total_actual += t.actual;
        total_bound += t.bound;
    }

    support::TextTable table(
        "Table 3: distribution statistics for various measurements");
    table.addHeader({"Measurement", "MinPoss", "Freq@Min", "Median",
                     "Mean", "Max"});
    table.addRow(distributionRow("Number of operations", ops, 4));
    table.addRow(distributionRow("MII", mii, 1));
    table.addRow(
        distributionRow("Minimum modulo schedule length", min_sl, 4));
    table.addRow(distributionRow("max(0, RecMII - ResMII)",
                                 rec_minus_res, 0));
    table.addRow(
        distributionRow("Number of non-trivial SCCs", non_trivial, 0));
    table.addRow(
        distributionRow("Number of nodes per SCC", nodes_per_scc, 1));
    table.addRow(distributionRow("II - MII", delta_ii, 0));
    table.addRow(distributionRow("II / MII", ii_over_mii, 1));
    table.addRow(
        distributionRow("Schedule length (ratio)", sl_ratio, 1));
    table.addRow(
        distributionRow("Execution time (ratio)", exec_ratio, 1));
    table.addRow(distributionRow("Number of nodes scheduled (ratio)",
                                 steps_ratio, 1));
    table.print(std::cout);

    // ---- §4.2 in-text statistics. -----------------------------------
    std::cout << "\nSection 4.2 companions:\n";
    std::cout << "  RecMII <= ResMII for "
              << support::formatDouble(
                     100.0 * support::fractionAtMost(rec_minus_res, 0), 1)
              << "% of loops (paper: 84%); <= 20 for "
              << support::formatDouble(
                     100.0 * support::fractionAtMost(rec_minus_res, 20),
                     1)
              << "% (paper: 90%); <= 28 for "
              << support::formatDouble(
                     100.0 * support::fractionAtMost(rec_minus_res, 28),
                     1)
              << "% (paper: 95%)\n";
    std::cout << "  vectorizable loops (no non-trivial SCC): "
              << support::formatDouble(
                     100.0 * support::fractionAtMost(non_trivial, 0), 1)
              << "% (paper: 77%)\n";
    std::cout << "  SCCs that are singletons: "
              << support::formatDouble(
                     100.0 * support::fractionAtMost(nodes_per_scc, 1), 1)
              << "% (paper: 93%); <= 2 ops: "
              << support::formatDouble(
                     100.0 * support::fractionAtMost(nodes_per_scc, 2), 1)
              << "% (paper: 96%); <= 8 ops: "
              << support::formatDouble(
                     100.0 * support::fractionAtMost(nodes_per_scc, 8), 1)
              << "% (paper: 99%)\n";

    // ---- §4.3 in-text statistics. -----------------------------------
    std::map<int, int> delta_histogram;
    for (double d : delta_ii)
        ++delta_histogram[static_cast<int>(d)];
    std::cout << "\nSection 4.3 companions:\n";
    std::cout << "  loops achieving the MII: "
              << support::formatDouble(
                     100.0 * support::fractionAtMost(delta_ii, 0), 1)
              << "% (paper: 96%)\n  DeltaII histogram:";
    for (const auto& [delta, count] : delta_histogram)
        std::cout << "  " << delta << "->" << count;
    std::cout << "\n  (paper: 32 loops at DeltaII=1, 8 at 2, 11 above 2, "
                 "max 20)\n";
    std::cout << "  executed loops: " << executed << " of "
              << records.size() << " (paper: 597 of 1327)\n";
    std::cout << "  aggregate execution time vs lower bound: +"
              << support::formatDouble(
                     100.0 * (total_actual / total_bound - 1.0), 2)
              << "% (paper: +2.8%)\n";

    // Scheduling inefficiency at this BudgetRatio (§4.3: 90% of loops
    // schedule each operation exactly once; mean 1.03; max 4.33).
    std::cout << "  loops scheduling each op exactly once: "
              << support::formatDouble(
                     100.0 * support::fractionAtMost(steps_ratio, 1.0), 1)
              << "% (paper: 90%)\n";
    return 0;
}
