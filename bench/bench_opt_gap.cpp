/**
 * @file
 * Heuristic-vs-optimal II gap, measured with the exact branch-and-bound
 * backend (sched/exact_scheduler.hpp). For every kernel-corpus loop, and
 * for a fixed-seed stream of fuzz-profile loops, the iterative heuristic
 * is run first and the exact backend then proves the true minimal
 * feasible II — capped at the heuristic II, which is known feasible, so
 * the proof costs at most (gap + 1) attempts. The per-loop gap
 * (heuristic II - optimal II) is the price of the paper's O(budget)
 * heuristic; Rau's claim is that it is almost always zero.
 *
 * A loop whose exact search exhausts its node budget is reported as
 * undecided, never counted as a gap. An exact II *above* the verified
 * heuristic II is a soundness bug in the exact backend and fails the
 * bench.
 *
 * Usage:
 *   bench_opt_gap [--out PATH] [--budget N] [--random-loops N] [--quick]
 */
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "machine/cydra5.hpp"
#include "sched/schedule.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_loops.hpp"

namespace {

using namespace ims;

struct Row
{
    std::string name;
    std::string kind; // "kernel" or "random"
    int ops = 0;
    int mii = 0;
    int heuristicIi = 0;
    int exactIi = -1; // -1: undecided (budget exhausted)
    int gap = 0;
};

} // namespace

int
main(int argc, char** argv)
{
    std::string out_path = "BENCH_opt_gap.json";
    std::int64_t budget = sched::kDefaultExactNodeBudget;
    int random_loops = 200;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc)
            budget = std::atoll(argv[++i]);
        else if (std::strcmp(argv[i], "--random-loops") == 0 && i + 1 < argc)
            random_loops = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else {
            std::cerr << "usage: bench_opt_gap [--out PATH] [--budget N] "
                         "[--random-loops N] [--quick]\n";
            return 2;
        }
    }
    if (quick)
        random_loops = std::min(random_loops, 40);

    const auto machine = machine::cydra5();
    const sched::ScheduleOptions heuristic;

    int soundness_violations = 0;
    std::vector<Row> rows;
    auto measure = [&](const ir::Loop& loop, const std::string& kind) {
        Row row;
        row.name = loop.name();
        row.kind = kind;
        row.ops = loop.size();
        const auto reference = sched::schedule(loop, machine, heuristic);
        row.mii = reference.mii;
        row.heuristicIi = reference.schedule.ii;

        sched::ScheduleOptions exact;
        exact.strategy = sched::SchedulerStrategy::kExact;
        exact.exactNodeBudget = budget;
        // The heuristic II is feasible, so the exact search never needs
        // to look above it.
        exact.search.maxIiIncrease =
            std::max(0, row.heuristicIi - row.mii);
        try {
            const auto proven = sched::schedule(loop, machine, exact);
            row.exactIi = proven.schedule.ii;
            row.gap = row.heuristicIi - row.exactIi;
            if (row.gap < 0) {
                std::cerr << "soundness violation: exact II "
                          << row.exactIi << " above verified heuristic II "
                          << row.heuristicIi << " on " << row.name << "\n";
                ++soundness_violations;
            }
        } catch (const support::CodedError& error) {
            if (error.code() != "exact.budget_exhausted")
                throw;
            // undecided: exactIi stays -1, gap stays 0
        }
        rows.push_back(std::move(row));
    };

    for (const auto& w : workloads::kernelLibrary())
        measure(w.loop, "kernel");
    {
        support::Rng rng(20260806);
        const auto profile = workloads::fuzzProfile();
        for (int i = 0; i < random_loops; ++i)
            measure(workloads::generateLoop(
                        rng, "rand_" + std::to_string(i), profile),
                    "random");
    }

    int decided = 0, undecided = 0, gaps = 0, max_gap = 0;
    long long gap_sum = 0;
    for (const auto& row : rows) {
        if (row.exactIi < 0) {
            ++undecided;
            continue;
        }
        ++decided;
        if (row.gap > 0) {
            ++gaps;
            gap_sum += row.gap;
            max_gap = std::max(max_gap, row.gap);
        }
    }

    support::TextTable table(
        "heuristic vs proven-optimal II (" + machine.name() + ", " +
        std::to_string(rows.size()) + " loops, budget " +
        std::to_string(budget) + ")");
    table.addHeader(
        {"loop", "kind", "ops", "MII", "heuristic II", "exact II", "gap"});
    for (const auto& row : rows) {
        if (row.kind != "kernel" && row.gap == 0 && row.exactIi >= 0)
            continue; // random loops: only the interesting rows
        table.addRow({row.name, row.kind, std::to_string(row.ops),
                      std::to_string(row.mii),
                      std::to_string(row.heuristicIi),
                      row.exactIi < 0 ? "undecided"
                                      : std::to_string(row.exactIi),
                      std::to_string(row.gap)});
    }
    table.print(std::cout);
    std::cout << decided << " decided, " << undecided << " undecided, "
              << gaps << " loops with a gap (max " << max_gap
              << ", total " << gap_sum << ")\n";

    {
        std::ofstream out(out_path);
        out << "{\n  \"schema\": \"ims.bench_opt_gap.v1\",\n"
            << "  \"machine\": \"" << machine.name() << "\",\n"
            << "  \"budget\": " << budget << ",\n"
            << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
            << "  \"decided\": " << decided << ",\n"
            << "  \"undecided\": " << undecided << ",\n"
            << "  \"loops_with_gap\": " << gaps << ",\n"
            << "  \"max_gap\": " << max_gap << ",\n"
            << "  \"soundness_violations\": " << soundness_violations
            << ",\n  \"loops\": [\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto& row = rows[i];
            out << "    {\"name\": \"" << row.name << "\", \"kind\": \""
                << row.kind << "\", \"ops\": " << row.ops
                << ", \"mii\": " << row.mii << ", \"heuristic_ii\": "
                << row.heuristicIi << ", \"exact_ii\": " << row.exactIi
                << ", \"gap\": " << row.gap << "}"
                << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
    }
    std::cout << "wrote " << out_path << "\n";

    if (soundness_violations != 0)
        return 1;
    // Acceptance: every kernel-corpus loop must be decided within the
    // default budget.
    for (const auto& row : rows) {
        if (row.kind == "kernel" && row.exactIi < 0) {
            std::cerr << "bench_opt_gap: kernel " << row.name
                      << " undecided within budget\n";
            return 1;
        }
    }
    return 0;
}
