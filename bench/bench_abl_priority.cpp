/**
 * @file
 * Ablation: the scheduling priority function. §3.2 of the paper settles
 * on the height-based HeightR after "a number of iterative algorithms and
 * priority functions were investigated"; this bench quantifies why, by
 * running the corpus under HeightR, least-slack, source-order and random
 * priorities and comparing optimality (II = MII rate), schedule quality
 * and scheduling effort.
 */
#include <iostream>

#include "common.hpp"

int
main()
{
    using namespace ims;
    using namespace ims::bench;

    const auto machine = machine::cydra5();
    // A subset of the corpus keeps the weak priorities' thrash affordable.
    workloads::CorpusSpec spec;
    spec.perfectLoops = 300;
    spec.specLoops = 100;
    spec.lfkLoops = 27;
    const auto corpus = workloads::buildCorpus(spec);

    support::TextTable table(
        "Ablation: priority function (BudgetRatio 6, " +
        std::to_string(corpus.size()) + " loops)");
    table.addHeader({"Priority", "Loops at MII (%)", "Mean II/MII",
                     "Mean steps/op", "Unschedules/op"});

    for (const auto scheme :
         {sched::PriorityScheme::kHeightR, sched::PriorityScheme::kSlack,
          sched::PriorityScheme::kSourceOrder,
          sched::PriorityScheme::kRandom}) {
        sched::ScheduleOptions options;
        options.search.budgetRatio = 6.0;
        options.priority = scheme;
        const auto records = measureCorpus(corpus, machine, options);

        int at_mii = 0;
        double ii_ratio = 0.0;
        long long steps = 0, ops = 0, unschedules = 0;
        for (const auto& r : records) {
            at_mii += r.ii == r.mii;
            ii_ratio += static_cast<double>(r.ii) / r.mii;
            steps += r.stepsTotal;
            ops += r.ddgOps;
            unschedules += r.unschedules;
        }
        table.addRow({sched::prioritySchemeName(scheme),
                      support::formatDouble(
                          100.0 * at_mii / records.size(), 1),
                      support::formatDouble(
                          ii_ratio / records.size(), 4),
                      support::formatDouble(
                          static_cast<double>(steps) / ops, 2),
                      support::formatDouble(
                          static_cast<double>(unschedules) / ops, 2)});
    }
    table.print(std::cout);

    std::cout
        << "\nExpected shape: the informed priorities (HeightR — the "
           "paper's choice — and least-slack,\nwhich anticipates Huff's "
           "lifetime-sensitive scheduling [18]) are near-optimal; source "
           "order\ndegrades on recurrence-bound loops; random causes an "
           "order of magnitude more displacements.\nMean steps/op is "
           "dominated by the few large-DeltaII loops whose failed "
           "candidate IIs each\nexpend the whole budget — the paper's "
           "own observation that raising BudgetRatio \"only means\nthat "
           "more compile time is spent on attempts that are destined to "
           "be unsuccessful\".\n";
    return 0;
}
