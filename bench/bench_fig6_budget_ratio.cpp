/**
 * @file
 * Regenerates Figure 6 of the paper: the variation of the aggregate
 * execution-time dilation and of the aggregate scheduling inefficiency
 * with the BudgetRatio parameter, swept over 1.00..4.00 as in the figure.
 *
 * Definitions follow §4.3 exactly:
 *  - execution-time dilation: total execution time over all (executed)
 *    loops as a fraction above the lower bound
 *    EntryFreq*minSL + (LoopFreq-EntryFreq)*MII;
 *  - scheduling inefficiency: the ratio of the total number of operation
 *    scheduling steps performed in IterativeSchedule (failed candidate
 *    IIs expend their full budget) to the total number of operations.
 *
 * The paper's landmarks: dilation falls from 5.2% to 2.9% at BudgetRatio
 * 1.75 and ~2.8% at 2; inefficiency bottoms out around 1.55-1.59 near
 * BudgetRatio 1.75-2 and rises slowly beyond.
 */
#include <iostream>

#include "common.hpp"

int
main()
{
    using namespace ims;
    using namespace ims::bench;

    const auto machine = machine::cydra5();
    const auto corpus = workloads::buildCorpus();

    support::TextTable table(
        "Figure 6: execution-time dilation and scheduling inefficiency "
        "vs BudgetRatio");
    table.addHeader({"BudgetRatio", "ExecTime dilation (%)",
                     "Scheduling inefficiency", "Loops at MII (%)"});

    double best_budget = 0.0, best_score = 1e30;
    for (int step = 0; step <= 12; ++step) {
        const double budget_ratio = 1.0 + 0.25 * step;
        sched::ScheduleOptions options;
        options.search.budgetRatio = budget_ratio;
        const auto records = measureCorpus(corpus, machine, options);

        double total_actual = 0.0, total_bound = 0.0;
        long long total_steps = 0, total_ops = 0;
        int at_mii = 0;
        for (std::size_t k = 0; k < records.size(); ++k) {
            const auto profile =
                workloads::syntheticProfile(static_cast<int>(k));
            const auto t = executionTimes(records[k], profile);
            total_actual += t.actual;
            total_bound += t.bound;
            total_steps += records[k].stepsTotal;
            total_ops += records[k].ddgOps;
            at_mii += records[k].ii == records[k].mii;
        }
        const double dilation =
            100.0 * (total_actual / total_bound - 1.0);
        const double inefficiency =
            static_cast<double>(total_steps) / total_ops;
        table.addRow({support::formatDouble(budget_ratio, 2),
                      support::formatDouble(dilation, 2),
                      support::formatDouble(inefficiency, 3),
                      support::formatDouble(
                          100.0 * at_mii / records.size(), 1)});

        // The paper's "optimum": both metrics near their minima; score
        // by normalised sum.
        const double score = dilation + 2.0 * inefficiency;
        if (score < best_score) {
            best_score = score;
            best_budget = budget_ratio;
        }
    }
    table.print(std::cout);

    std::cout << "\nApproximate optimum BudgetRatio for this corpus: "
              << support::formatDouble(best_budget, 2)
              << " (paper: ~2, with 2/1.75/1.5 per suite)\n";
    std::cout << "Paper landmarks: dilation 5.2% at BR 1.0 falling to "
                 "~2.8-2.9% by BR 1.75-2; inefficiency\nminimum ~1.55-1.59 "
                 "around BR 1.75-2, then slowly increasing.\n";

    // §5's unroll-competitiveness observation at BudgetRatio 2: an
    // unrolling scheme must stay within this code replication to match
    // the scheduling effort (paper: 2.18x = 1.59 + 0.59).
    {
        sched::ScheduleOptions options;
        options.search.budgetRatio = 2.0;
        const auto records = measureCorpus(corpus, machine, options);
        long long steps = 0, ops = 0, unschedules = 0;
        for (const auto& r : records) {
            steps += r.stepsTotal;
            ops += r.ddgOps;
            unschedules += r.unschedules;
        }
        const double per_op = static_cast<double>(steps) / ops;
        const double unsched_per_op =
            static_cast<double>(unschedules) / ops;
        const double cost = per_op + unsched_per_op;
        std::cout << "\nAt BudgetRatio 2: " << support::formatDouble(per_op, 2)
                  << " scheduling steps per operation and "
                  << support::formatDouble(unsched_per_op, 2)
                  << " unschedules per operation\n=> cost vs acyclic list "
                     "scheduling ~"
                  << support::formatDouble(cost, 2)
                  << "x (paper: 1.59 + 0.59 = 2.18x). Unrolling-based "
                     "schemes that replicate more than\n   "
                  << support::formatDouble(100.0 * (cost - 1.0), 0)
                  << "% beyond one copy of the loop body are "
                     "computationally more expensive\n   (paper: 118%, "
                     "\"just over one copy\").\n";
    }
    return 0;
}
