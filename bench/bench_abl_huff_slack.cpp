/**
 * @file
 * Ablation: iterative modulo scheduling (this paper) vs a Huff-style
 * lifetime-sensitive bidirectional slack scheduler [18] — the companion
 * algorithm the paper credits for the MinDist formulation. Head-to-head
 * on II attainment, schedule length, register pressure (MaxLive /
 * rotating registers / MVE unroll) and effort.
 */
#include <iostream>

#include "codegen/lifetimes.hpp"
#include "codegen/mve.hpp"
#include "common.hpp"
#include "sched/schedule.hpp"

namespace {

using namespace ims;
using namespace ims::bench;

struct Row
{
    int atMii = 0;
    double iiRatio = 0.0;
    double sl = 0.0;
    double maxLive = 0.0;
    double unroll = 0.0;
    long long steps = 0;
    long long ops = 0;
    int loops = 0;
};

} // namespace

int
main()
{
    const auto machine = machine::cydra5();
    workloads::CorpusSpec spec;
    spec.perfectLoops = 250;
    spec.specLoops = 80;
    spec.lfkLoops = 27;
    const auto corpus = workloads::buildCorpus(spec);

    sched::ScheduleOptions options;
    options.search.budgetRatio = 6.0;
    sched::ScheduleOptions slack_options;
    slack_options.strategy = sched::SchedulerStrategy::kSlack;
    slack_options.search = options.search;

    Row ims_row, huff_row;
    for (const auto& w : corpus) {
        const auto g = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(g);

        auto account = [&](Row& row,
                           const sched::ModuloScheduleOutcome& outcome) {
            const auto violations = sched::verifySchedule(
                w.loop, machine, g, outcome.schedule);
            support::check(violations.empty(),
                           "illegal schedule from " + w.loop.name() +
                               ": " +
                               (violations.empty()
                                    ? ""
                                    : violations[0].toString()));
            row.atMii += outcome.schedule.ii == outcome.mii;
            row.iiRatio += static_cast<double>(outcome.schedule.ii) /
                           outcome.mii;
            row.sl += outcome.schedule.scheduleLength;
            const auto lifetimes = codegen::analyzeLifetimes(
                w.loop, machine, outcome.schedule);
            const auto mve = codegen::planMve(w.loop, lifetimes,
                                              outcome.schedule.ii);
            row.maxLive += lifetimes.maxLive;
            row.unroll += mve.unroll;
            row.steps += outcome.totalSteps;
            row.ops += w.loop.size() + 2;
            ++row.loops;
        };

        account(ims_row,
                sched::schedule(w.loop, machine, g, sccs, options));
        account(huff_row,
                sched::schedule(w.loop, machine, g, sccs, slack_options));
    }

    support::TextTable table(
        "iterative modulo scheduling vs Huff-style slack scheduling (" +
        std::to_string(corpus.size()) + " loops, BudgetRatio 6)");
    table.addHeader({"Algorithm", "Loops at MII (%)", "Mean II/MII",
                     "Mean SL", "Mean MaxLive", "Mean MVE unroll",
                     "Steps/op"});
    auto add = [&table](const char* name, const Row& row) {
        table.addRow(
            {name,
             support::formatDouble(100.0 * row.atMii / row.loops, 1),
             support::formatDouble(row.iiRatio / row.loops, 4),
             support::formatDouble(row.sl / row.loops, 1),
             support::formatDouble(row.maxLive / row.loops, 2),
             support::formatDouble(row.unroll / row.loops, 2),
             support::formatDouble(
                 static_cast<double>(row.steps) / row.ops, 2)});
    };
    add("iterative modulo (paper)", ims_row);
    add("slack bidirectional (Huff)", huff_row);
    table.print(std::cout);

    std::cout
        << "\nExpected shape: both reach near-optimal IIs; the "
           "bidirectional placement shortens value\nlifetimes (lower "
           "MaxLive / MVE unroll, the point of [18]) at a higher "
           "per-operation cost\n(the slack scheduler recomputes its "
           "windows against the whole placed set).\n";
    return 0;
}
