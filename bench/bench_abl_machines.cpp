/**
 * @file
 * Ablation: machine model. The same kernel library scheduled for the
 * Cydra-5-like machine (complex shared-bus reservation tables), the
 * clean64 machine (same units, simple private-bus tables) and a wide
 * VLIW, showing how table complexity and resources shape MII/II and the
 * scheduler's effort — the paper's point that block/complex tables are
 * what make iterative (backtracking) scheduling necessary.
 */
#include <iostream>

#include "common.hpp"
#include "machine/machines.hpp"

int
main()
{
    using namespace ims;
    using namespace ims::bench;

    const auto corpus = workloads::kernelLibrary();
    const machine::MachineModel machines[] = {
        machine::cydra5(), machine::clean64(), machine::wideVliw()};

    support::TextTable table("Ablation: machine models over the kernel "
                             "library");
    std::vector<std::string> header = {"Kernel"};
    for (const auto& m : machines) {
        header.push_back(m.name() + " II");
        header.push_back(m.name() + " SL");
    }
    table.addHeader(header);

    sched::ScheduleOptions options;
    options.search.budgetRatio = 6.0;

    for (const auto& w : corpus) {
        std::vector<std::string> row = {w.loop.name()};
        for (const auto& m : machines) {
            const auto record = measureLoop(w, m, options);
            row.push_back(std::to_string(record.ii));
            row.push_back(std::to_string(record.scheduleLength));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    // Aggregate effort comparison.
    support::TextTable agg("scheduling effort by machine (whole corpus "
                           "subset)");
    agg.addHeader({"Machine", "Loops at MII (%)", "Steps/op",
                   "Unschedules/op"});
    workloads::CorpusSpec spec;
    spec.perfectLoops = 300;
    spec.specLoops = 100;
    spec.lfkLoops = 27;
    const auto big = workloads::buildCorpus(spec);
    for (const auto& m : machines) {
        const auto records = measureCorpus(big, m, options);
        int at_mii = 0;
        long long steps = 0, ops = 0, unschedules = 0;
        for (const auto& r : records) {
            at_mii += r.ii == r.mii;
            steps += r.stepsTotal;
            ops += r.ddgOps;
            unschedules += r.unschedules;
        }
        agg.addRow({m.name(),
                    support::formatDouble(
                        100.0 * at_mii / records.size(), 1),
                    support::formatDouble(
                        static_cast<double>(steps) / ops, 2),
                    support::formatDouble(
                        static_cast<double>(unschedules) / ops, 2)});
    }
    agg.print(std::cout);

    std::cout << "\nExpected shape: the wide VLIW reaches smaller IIs; "
                 "clean64's simple tables need fewer\ndisplacements than "
                 "cydra5's shared-bus complex tables for the same unit "
                 "mix.\n";
    return 0;
}
