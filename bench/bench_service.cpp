/**
 * @file
 * Schedule-service traffic replay: content-addressed cache hit rate and
 * hit-vs-cold latency over a realistic request mix.
 *
 * The corpus is every kernel-library loop plus a fixed-seed stream of
 * fuzz-profile loops, rendered to request text via the canonical printer.
 * The traffic is a skewed stream (quadratically biased toward low
 * indices, like real compiler drivers re-submitting the same hot loops)
 * submitted through the async worker queue, then replayed a second time
 * so the whole stream should be served from the cache.
 *
 * Three gates:
 *
 *  1. **Identity** (always enforced): every response — hit or miss, at
 *     any worker count — must fingerprint identically to a cold
 *     single-threaded run of the same request (fingerprintResult covers
 *     the schedule, the rendered report and all diagnostics). A
 *     violation means the cache returned the wrong schedule and fails
 *     the bench regardless of timing.
 *  2. **Replay hit rate** (always enforced): the second pass over the
 *     stream must hit on >= --min-hit-rate (default 0.95) of requests.
 *     The cache is sized to hold the corpus, so anything lower means
 *     keys are unstable across identical requests.
 *  3. **Hit latency** (enforced under check_perf.sh via
 *     --min-hit-speedup): p50 hit service time must beat p50 cold
 *     service time by at least the given factor (default gate 10x) —
 *     the point of memoization is that a hit costs parse+hash+lookup,
 *     not a scheduling run.
 *
 * Usage:
 *   bench_service [--out PATH] [--threads N] [--requests N]
 *                 [--fuzz-loops N] [--min-hit-rate X]
 *                 [--min-hit-speedup X] [--quick]
 */
#include <algorithm>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "core/pipeliner.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "machine/cydra5.hpp"
#include "service/schedule_service.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_loops.hpp"

namespace {

using namespace ims;

double
percentile(std::vector<double> values, double fraction)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const auto index = static_cast<std::size_t>(
        fraction * static_cast<double>(values.size() - 1));
    return values[index];
}

} // namespace

int
main(int argc, char** argv)
{
    std::string out_path = "BENCH_service.json";
    int threads = 4;
    int requests = 2000;
    int fuzz_loops = 150;
    double min_hit_rate = 0.95;
    double min_hit_speedup = 0.0; // 0 = report only; check_perf gates
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            threads = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
            requests = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--fuzz-loops") == 0 && i + 1 < argc)
            fuzz_loops = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--min-hit-rate") == 0 && i + 1 < argc)
            min_hit_rate = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--min-hit-speedup") == 0 &&
                 i + 1 < argc)
            min_hit_speedup = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else {
            std::cerr << "usage: bench_service [--out PATH] [--threads N] "
                         "[--requests N] [--fuzz-loops N] "
                         "[--min-hit-rate X] [--min-hit-speedup X] "
                         "[--quick]\n";
            return 2;
        }
    }
    if (quick) {
        requests = std::min(requests, 400);
        fuzz_loops = std::min(fuzz_loops, 40);
    }

    // Corpus: kernel library + fixed-seed fuzz loops, as request text.
    std::vector<std::string> corpus;
    for (const auto& workload : workloads::kernelLibrary())
        corpus.push_back(ir::printLoop(workload.loop));
    {
        support::Rng rng(7);
        const auto profile = workloads::fuzzProfile();
        for (int i = 0; i < fuzz_loops; ++i)
            corpus.push_back(ir::printLoop(workloads::generateLoop(
                rng, "svc_fuzz_" + std::to_string(i), profile)));
    }

    // The service runs the full verification stack (structural check +
    // sim-equivalence oracle) on every miss: a memoizing service should
    // pay for verification exactly once per unique request and serve
    // every repeat from the cache.
    const core::PipelinerOptions pipeline_options =
        core::PipelinerOptions{}.withSimVerification(true);

    // Cold single-threaded reference fingerprints, one per unique loop —
    // the oracle every service response is compared against.
    const auto machine = machine::cydra5();
    std::vector<std::uint64_t> reference(corpus.size(), 0);
    {
        const core::SoftwarePipeliner pipeliner(machine, pipeline_options);
        for (std::size_t i = 0; i < corpus.size(); ++i) {
            const ir::Loop loop = ir::parseLoop(corpus[i]);
            const auto result =
                pipeliner.pipeline(core::PipelineRequest(loop));
            reference[i] = service::fingerprintResult(loop, machine, result);
        }
    }

    // Skewed request stream: index = floor(U^2 * N) re-submits the low
    // indices (the kernel library) far more often than the fuzz tail.
    std::vector<std::size_t> stream;
    stream.reserve(static_cast<std::size_t>(requests));
    {
        support::Rng rng(11);
        for (int i = 0; i < requests; ++i) {
            const double u =
                static_cast<double>(rng.next() >> 11) / 9007199254740992.0;
            stream.push_back(std::min(
                corpus.size() - 1,
                static_cast<std::size_t>(u * u *
                                         static_cast<double>(corpus.size()))));
        }
    }
    static const char* kClients[] = {"alpha", "beta", "gamma", "delta"};

    service::ScheduleService server(
        service::ServiceOptions{}
            .withPipelineOptions(pipeline_options)
            .withThreads(threads)
            // The bench measures cache behavior, not admission control:
            // size the queue so a whole pass can be in flight at once.
            .withMaxQueuedRequests(static_cast<std::size_t>(requests))
            .withCache(service::CacheOptions{corpus.size() * 2, 16}));

    int identity_violations = 0;
    std::vector<double> cold_ms;
    std::vector<double> hit_ms;
    std::vector<double> replay_ms;
    std::size_t pass1_hits = 0;
    std::size_t replay_hits = 0;

    const auto run_pass = [&](int pass) {
        std::vector<std::future<service::ServiceResponse>> futures;
        futures.reserve(stream.size());
        for (std::size_t i = 0; i < stream.size(); ++i) {
            service::ServiceRequest request;
            request.client = kClients[i % 4];
            request.loopText = corpus[stream[i]];
            futures.push_back(server.submit(std::move(request)));
        }
        for (std::size_t i = 0; i < futures.size(); ++i) {
            const service::ServiceResponse response = futures[i].get();
            if (!response.ok()) {
                std::cerr << "bench_service: request failed: "
                          << response.errorCode << " "
                          << response.errorMessage << "\n";
                ++identity_violations;
                continue;
            }
            const std::uint64_t fingerprint = service::fingerprintResult(
                *response.loop, response.model->model, *response.result);
            if (fingerprint != reference[stream[i]]) {
                std::cerr << "identity violation: " << response.loopName
                          << " pass " << pass
                          << (response.cacheHit ? " (hit)" : " (cold)")
                          << ": fingerprint " << std::hex << fingerprint
                          << " vs reference " << reference[stream[i]]
                          << std::dec << "\n";
                ++identity_violations;
            }
            const double ms = response.serviceSeconds * 1e3;
            if (pass == 1) {
                if (response.cacheHit) {
                    ++pass1_hits;
                    hit_ms.push_back(ms);
                } else {
                    cold_ms.push_back(ms);
                }
            } else {
                if (response.cacheHit) {
                    ++replay_hits;
                    hit_ms.push_back(ms);
                }
                replay_ms.push_back(ms);
            }
        }
    };
    run_pass(1);
    run_pass(2);
    const auto stats = server.stats();

    const double pass1_hit_rate =
        static_cast<double>(pass1_hits) / static_cast<double>(stream.size());
    const double replay_hit_rate = static_cast<double>(replay_hits) /
                                   static_cast<double>(stream.size());
    const double cold_p50 = percentile(cold_ms, 0.50);
    const double cold_p99 = percentile(cold_ms, 0.99);
    const double hit_p50 = percentile(hit_ms, 0.50);
    const double hit_p99 = percentile(hit_ms, 0.99);
    const double hit_speedup = hit_p50 > 0.0 ? cold_p50 / hit_p50 : 0.0;

    support::TextTable table("schedule service: traffic replay (" +
                             std::to_string(corpus.size()) +
                             " unique loops, " +
                             std::to_string(stream.size()) +
                             " requests/pass, " + std::to_string(threads) +
                             " workers)");
    table.addHeader({"metric", "value"});
    table.addRow({"pass-1 hit rate",
                  support::formatDouble(100.0 * pass1_hit_rate, 1) + "%"});
    table.addRow({"replay hit rate",
                  support::formatDouble(100.0 * replay_hit_rate, 1) + "%"});
    table.addRow({"cold p50 / p99 ms",
                  support::formatDouble(cold_p50, 3) + " / " +
                      support::formatDouble(cold_p99, 3)});
    table.addRow({"hit p50 / p99 ms", support::formatDouble(hit_p50, 3) +
                                          " / " +
                                          support::formatDouble(hit_p99, 3)});
    table.addRow(
        {"hit p50 speedup", support::formatDouble(hit_speedup, 1) + "x"});
    table.addRow({"evictions", std::to_string(stats.cache.evictions)});
    table.addRow({"identity violations",
                  std::to_string(identity_violations)});
    table.print(std::cout);

    {
        std::ofstream out(out_path);
        out << "{\n  \"schema\": \"ims.bench_service.v1\",\n"
            << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
            << "  \"svc_threads\": " << threads << ",\n"
            << "  \"svc_unique_loops\": " << corpus.size() << ",\n"
            << "  \"svc_requests_per_pass\": " << stream.size() << ",\n"
            << "  \"svc_hit_rate\": " << pass1_hit_rate << ",\n"
            << "  \"svc_replay_hit_rate\": " << replay_hit_rate << ",\n"
            << "  \"svc_cold_p50_ms\": " << cold_p50 << ",\n"
            << "  \"svc_cold_p99_ms\": " << cold_p99 << ",\n"
            << "  \"svc_hit_p50_ms\": " << hit_p50 << ",\n"
            << "  \"svc_hit_p99_ms\": " << hit_p99 << ",\n"
            << "  \"svc_hit_p50_speedup\": " << hit_speedup << ",\n"
            << "  \"svc_identity_violations\": " << identity_violations
            << ",\n"
            << "  \"svc_min_hit_rate\": " << min_hit_rate << ",\n"
            << "  \"svc_min_hit_speedup\": " << min_hit_speedup << ",\n"
            << "  \"svc_cache\": " << stats.toJson() << "\n}\n";
    }
    std::cout << "wrote " << out_path << "\n";

    if (identity_violations != 0) {
        std::cerr << "bench_service: " << identity_violations
                  << " identity violations (cached != cold)\n";
        return 1;
    }
    if (replay_hit_rate < min_hit_rate) {
        std::cerr << "bench_service: replay hit rate "
                  << support::formatDouble(100.0 * replay_hit_rate, 1)
                  << "% below the "
                  << support::formatDouble(100.0 * min_hit_rate, 1)
                  << "% floor\n";
        return 1;
    }
    if (min_hit_speedup > 0.0 && hit_speedup < min_hit_speedup) {
        std::cerr << "bench_service: hit p50 speedup "
                  << support::formatDouble(hit_speedup, 1) << "x below the "
                  << support::formatDouble(min_hit_speedup, 1)
                  << "x floor\n";
        return 1;
    }
    return 0;
}
