/**
 * @file
 * Batch-pipelining throughput: drive the BatchPipeliner over the workload
 * corpus at increasing thread counts and report wall time, loops/s and
 * speedup over the sequential run. Loops are independent, so the batch is
 * embarrassingly parallel; on an N-core machine the speedup should be
 * near-linear until the pool saturates the cores. The harness also
 * asserts that every thread count produces bitwise-identical schedules
 * (the determinism contract the tests enforce too) and prints the
 * aggregate distribution report of the sequential run.
 *
 * Usage: bench_batch_throughput [--loops N] [--threads a,b,c,...]
 *        (defaults: 240 corpus loops; 1,2,4,8 threads)
 */
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_pipeliner.hpp"
#include "machine/cydra5.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "workloads/corpus.hpp"

namespace {

using namespace ims;

/** "1,2,4" -> {1,2,4}; empty on any non-positive or non-numeric entry. */
std::vector<int>
parseThreadList(const std::string& text)
{
    std::vector<int> threads;
    std::stringstream in(text);
    std::string item;
    while (std::getline(in, item, ',')) {
        try {
            std::size_t used = 0;
            const int value = std::stoi(item, &used);
            if (used != item.size() || value <= 0)
                return {};
            threads.push_back(value);
        } catch (const std::exception&) {
            return {};
        }
    }
    return threads;
}

bool
identicalSchedules(const core::BatchResult& a, const core::BatchResult& b)
{
    if (a.items.size() != b.items.size())
        return false;
    for (std::size_t i = 0; i < a.items.size(); ++i) {
        if (a.items[i].result.ok() != b.items[i].result.ok())
            return false;
        if (!a.items[i].result.ok())
            continue;
        const auto& sa = a.items[i].result.artifacts->outcome.schedule;
        const auto& sb = b.items[i].result.artifacts->outcome.schedule;
        if (sa.ii != sb.ii || sa.times != sb.times ||
            sa.alternatives != sb.alternatives)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    int num_loops = 240;
    std::vector<int> thread_counts = {1, 2, 4, 8};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--loops") == 0 && i + 1 < argc)
            num_loops = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            thread_counts = parseThreadList(argv[++i]);
        else {
            std::cerr << "usage: bench_batch_throughput [--loops N] "
                         "[--threads a,b,c,...]\n";
            return 2;
        }
    }
    if (num_loops <= 0 || thread_counts.empty()) {
        std::cerr << "bench_batch_throughput: --loops needs a positive "
                     "count and --threads a comma-separated list of "
                     "positive integers\n";
        return 2;
    }

    // A corpus slice with the §4.1 suite mix (~3.8:1.1:1 per 240 loops).
    workloads::CorpusSpec spec;
    spec.lfkLoops = std::min(27, num_loops);
    spec.specLoops = std::max(0, std::min(num_loops / 5,
                                          num_loops - spec.lfkLoops));
    spec.perfectLoops =
        std::max(0, num_loops - spec.lfkLoops - spec.specLoops);
    std::vector<ir::Loop> loops;
    for (const auto& workload : workloads::buildCorpus(spec))
        loops.push_back(workload.loop);

    const auto machine = machine::cydra5();
    std::cout << "batch throughput on " << machine.name() << ": "
              << loops.size() << " corpus loops, hardware concurrency "
              << std::thread::hardware_concurrency() << "\n\n";

    support::TextTable table("batch pipelining throughput");
    table.addHeader({"threads", "wall s", "loops/s", "speedup",
                     "identical schedules"});

    core::BatchResult baseline;
    double baseline_seconds = 0.0;
    for (const int threads : thread_counts) {
        core::BatchPipeliner batch(
            machine, core::BatchOptions{}.withThreads(threads));
        const auto result = batch.run(loops);

        if (result.failures() != 0) {
            std::cerr << "unexpected failures: " << result.failures()
                      << "\n";
            return 1;
        }

        bool identical = true;
        if (threads == thread_counts.front()) {
            baseline = result;
            baseline_seconds = result.wallSeconds;
        } else {
            identical = identicalSchedules(baseline, result);
        }

        table.addRow(
            {std::to_string(result.threadsUsed),
             support::formatDouble(result.wallSeconds, 3),
             support::formatDouble(
                 static_cast<double>(loops.size()) /
                     std::max(result.wallSeconds, 1e-12),
                 1),
             support::formatDouble(
                 baseline_seconds /
                     std::max(result.wallSeconds, 1e-12),
                 2),
             identical ? "yes" : "NO (BUG)"});
        if (!identical) {
            table.print(std::cout);
            std::cerr << "\nschedules diverged at " << threads
                      << " threads — determinism bug\n";
            return 1;
        }
    }
    table.print(std::cout);

    std::cout << "\n" << baseline.summaryTable();
    return 0;
}
