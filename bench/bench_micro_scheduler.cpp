/**
 * @file
 * google-benchmark micro-performance of the library's hot paths:
 * dependence-graph construction, SCC identification, MinDist closure,
 * HeightR, one IterativeSchedule attempt and the full ModuloSchedule
 * driver, at several loop sizes. Complements bench_table4_complexity
 * (operation counts) with wall-clock scaling.
 */
#include <benchmark/benchmark.h>

#include "graph/graph_builder.hpp"
#include "graph/scc.hpp"
#include "machine/cydra5.hpp"
#include "mii/mii.hpp"
#include "mii/min_dist.hpp"
#include "sched/height_r.hpp"
#include "sched/schedule.hpp"
#include "support/rng.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_loops.hpp"

namespace {

using namespace ims;

/** Deterministic loop of roughly `target` ops. */
ir::Loop
loopOfSize(int target)
{
    support::Rng rng(static_cast<std::uint64_t>(target) * 1299709 + 11);
    workloads::GeneratorProfile profile;
    // Force the streaming category and pin the size class distribution
    // towards the requested size by resampling.
    for (int tries = 0; tries < 400; ++tries) {
        auto loop = workloads::generateLoop(rng, "micro", profile);
        if (std::abs(loop.size() - target) <= target / 4)
            return loop;
    }
    return workloads::generateLoop(rng, "micro", profile);
}

const machine::MachineModel&
cydra()
{
    static const machine::MachineModel machine = machine::cydra5();
    return machine;
}

void
BM_BuildDepGraph(benchmark::State& state)
{
    const auto loop = loopOfSize(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto g = graph::buildDepGraph(loop, cydra());
        benchmark::DoNotOptimize(g.numEdges());
    }
    state.SetLabel(std::to_string(loop.size()) + " ops");
}

void
BM_FindSccs(benchmark::State& state)
{
    const auto loop = loopOfSize(static_cast<int>(state.range(0)));
    const auto g = graph::buildDepGraph(loop, cydra());
    for (auto _ : state) {
        auto sccs = graph::findSccs(g);
        benchmark::DoNotOptimize(sccs.numComponents());
    }
}

void
BM_MinDistFullGraph(benchmark::State& state)
{
    const auto loop = loopOfSize(static_cast<int>(state.range(0)));
    const auto g = graph::buildDepGraph(loop, cydra());
    for (auto _ : state) {
        mii::MinDistMatrix dist(g, 4);
        benchmark::DoNotOptimize(dist.maxDiagonal());
    }
}

void
BM_HeightR(benchmark::State& state)
{
    const auto loop = loopOfSize(static_cast<int>(state.range(0)));
    const auto g = graph::buildDepGraph(loop, cydra());
    const auto sccs = graph::findSccs(g);
    const auto m = mii::computeMii(loop, cydra(), g, sccs);
    for (auto _ : state) {
        auto h = sched::computeHeightR(g, sccs, m.mii);
        benchmark::DoNotOptimize(h.data());
    }
}

void
BM_ModuloSchedule(benchmark::State& state)
{
    const auto loop = loopOfSize(static_cast<int>(state.range(0)));
    const auto g = graph::buildDepGraph(loop, cydra());
    const auto sccs = graph::findSccs(g);
    sched::ScheduleOptions options;
    for (auto _ : state) {
        auto outcome =
            sched::schedule(loop, cydra(), g, sccs, options);
        benchmark::DoNotOptimize(outcome.schedule.ii);
    }
}

void
BM_FullPipelineOverKernels(benchmark::State& state)
{
    // End-to-end throughput across the whole kernel suite (loops/sec).
    const auto corpus = workloads::kernelLibrary();
    sched::ScheduleOptions options;
    for (auto _ : state) {
        for (const auto& w : corpus) {
            auto outcome = sched::schedule(w.loop, cydra(), options);
            benchmark::DoNotOptimize(outcome.schedule.ii);
        }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long long>(corpus.size()));
}

} // namespace

BENCHMARK(BM_BuildDepGraph)->Arg(8)->Arg(24)->Arg(64)->Arg(150);
BENCHMARK(BM_FindSccs)->Arg(8)->Arg(24)->Arg(64)->Arg(150);
BENCHMARK(BM_MinDistFullGraph)->Arg(8)->Arg(24)->Arg(64)->Arg(150);
BENCHMARK(BM_HeightR)->Arg(8)->Arg(24)->Arg(64)->Arg(150);
BENCHMARK(BM_ModuloSchedule)->Arg(8)->Arg(24)->Arg(64)->Arg(150);
BENCHMARK(BM_FullPipelineOverKernels);

BENCHMARK_MAIN();
