/**
 * @file
 * Ablation: register pressure of the generated schedules. The paper's
 * pipeline hands the kernel to the rotating register allocator [35]; Huff
 * [18] later showed that schedules with the same II can differ widely in
 * register requirements. This bench reports value lifetimes, MaxLive, the
 * MVE unroll factor and the rotating-register demand over the corpus, and
 * how the priority function moves them (least-slack tends to stretch
 * lifetimes less than height-first for the same II).
 */
#include <iostream>

#include "codegen/lifetimes.hpp"
#include "codegen/mve.hpp"
#include "codegen/register_allocator.hpp"
#include "common.hpp"

namespace {

using namespace ims;
using namespace ims::bench;

struct PressureStats
{
    std::vector<double> maxLive;
    std::vector<double> rotating;
    std::vector<double> unroll;
    int sameIi = 0;
    int loops = 0;
};

PressureStats
run(const std::vector<workloads::Workload>& corpus,
    const machine::MachineModel& machine, sched::PriorityScheme scheme,
    const std::vector<int>* reference_ii)
{
    PressureStats stats;
    for (std::size_t k = 0; k < corpus.size(); ++k) {
        const auto& w = corpus[k];
        const auto g = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(g);
        sched::ScheduleOptions options;
        options.search.budgetRatio = 6.0;
        options.priority = scheme;
        const auto outcome =
            sched::schedule(w.loop, machine, g, sccs, options);
        const auto lifetimes =
            codegen::analyzeLifetimes(w.loop, machine, outcome.schedule);
        const auto mve =
            codegen::planMve(w.loop, lifetimes, outcome.schedule.ii);
        const auto registers =
            codegen::allocateRegisters(w.loop, lifetimes, mve);
        stats.maxLive.push_back(lifetimes.maxLive);
        stats.rotating.push_back(registers.rotatingRegisters);
        stats.unroll.push_back(mve.unroll);
        if (reference_ii != nullptr &&
            outcome.schedule.ii == (*reference_ii)[k]) {
            ++stats.sameIi;
        }
        ++stats.loops;
    }
    return stats;
}

} // namespace

int
main()
{
    const auto machine = machine::cydra5();
    workloads::CorpusSpec spec;
    spec.perfectLoops = 300;
    spec.specLoops = 100;
    spec.lfkLoops = 27;
    const auto corpus = workloads::buildCorpus(spec);

    // Reference IIs from the default configuration.
    std::vector<int> reference_ii;
    for (const auto& w : corpus) {
        sched::ScheduleOptions options;
        options.search.budgetRatio = 6.0;
        reference_ii.push_back(
            measureLoop(w, machine, options).ii);
    }

    support::TextTable table(
        "register pressure by priority scheme (" +
        std::to_string(corpus.size()) + " loops, BudgetRatio 6)");
    table.addHeader({"Priority", "Same II as HeightR (%)",
                     "Mean MaxLive", "Mean rotating regs",
                     "Mean MVE unroll", "Max rotating regs"});

    for (const auto scheme :
         {sched::PriorityScheme::kHeightR, sched::PriorityScheme::kSlack,
          sched::PriorityScheme::kSourceOrder}) {
        const auto stats = run(corpus, machine, scheme, &reference_ii);
        table.addRow(
            {sched::prioritySchemeName(scheme),
             support::formatDouble(100.0 * stats.sameIi / stats.loops, 1),
             support::formatDouble(support::mean(stats.maxLive), 2),
             support::formatDouble(support::mean(stats.rotating), 2),
             support::formatDouble(support::mean(stats.unroll), 2),
             support::formatDouble(
                 *std::max_element(stats.rotating.begin(),
                                   stats.rotating.end()),
                 0)});
    }
    table.print(std::cout);

    std::cout
        << "\nContext: the paper treats register allocation as a "
           "downstream step ([35]); Huff's\nlifetime-sensitive modulo "
           "scheduling [18] (the paper's reference for the MinDist\n"
           "formulation) showed II-equivalent schedules can differ "
           "substantially in register\ndemand. On the Cydra-5 model the "
           "long load latency dominates lifetimes, so the\nschemes land "
           "close together; the spread widens on latency-light "
           "machines.\n";
    return 0;
}
