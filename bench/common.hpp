#ifndef IMS_BENCH_COMMON_HPP
#define IMS_BENCH_COMMON_HPP

#include <algorithm>
#include <iostream>
#include <vector>

#include "graph/graph_builder.hpp"
#include "graph/scc.hpp"
#include "machine/cydra5.hpp"
#include "mii/mii.hpp"
#include "mii/min_dist.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"
#include "sched/verifier.hpp"
#include "support/counters.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workloads/corpus.hpp"
#include "workloads/profile_model.hpp"

namespace ims::bench {

/** Everything the experiment harnesses measure about one loop. */
struct LoopRecord
{
    std::string name;
    std::string suite;
    /** Real operations in the loop body. */
    int ops = 0;
    /** Dependence-graph operations including START/STOP (Fig. 3's N). */
    int ddgOps = 0;
    /** Real dependence edges (the paper's E). */
    int edges = 0;
    int resMii = 1;
    int mii = 1;
    /** True RecMII (search from 1, for Table 3's max(0, Rec-Res)). */
    int trueRecMii = 1;
    int nonTrivialSccs = 0;
    /** Sizes of every SCC over real operations (for "nodes per SCC"). */
    std::vector<int> sccSizes;
    int ii = 1;
    int scheduleLength = 0;
    /** Lower bound on SL: max(MinDist[START,STOP] at MII, list SL). */
    int minScheduleLength = 0;
    int listScheduleLength = 0;
    /** Candidate IIs attempted. */
    int attempts = 1;
    /** Steps of the final, successful IterativeSchedule invocation. */
    long long stepsLastAttempt = 0;
    /** Steps across all attempts (failed ones expend the whole budget). */
    long long stepsTotal = 0;
    long long unschedules = 0;
    /** Per-activity instrumentation (aggregated over the whole run). */
    support::Counters counters;
};

/** Measure one loop under the given scheduling options. */
inline LoopRecord
measureLoop(const workloads::Workload& workload,
            const machine::MachineModel& machine,
            const sched::ScheduleOptions& options)
{
    const ir::Loop& loop = workload.loop;
    LoopRecord record;
    record.name = loop.name();
    record.suite = workload.suite;
    record.ops = loop.size();
    record.ddgOps = loop.size() + 2;

    const graph::DepGraph graph = graph::buildDepGraph(loop, machine);
    record.edges = graph.numRealEdges();
    const graph::SccResult sccs = graph::findSccs(graph, &record.counters);

    record.nonTrivialSccs = 0;
    for (const auto& component : sccs.components()) {
        if (graph.isPseudo(component.front()))
            continue;
        record.sccSizes.push_back(static_cast<int>(component.size()));
        if (component.size() > 1)
            ++record.nonTrivialSccs;
    }

    record.trueRecMii = mii::computeTrueRecMii(graph, sccs);

    const auto outcome = sched::schedule(loop, machine, graph, sccs,
                                         options, &record.counters);
    record.resMii = outcome.resMii;
    record.mii = outcome.mii;
    record.ii = outcome.schedule.ii;
    record.scheduleLength = outcome.schedule.scheduleLength;
    record.attempts = outcome.attempts;
    record.stepsLastAttempt = outcome.schedule.stepsUsed;
    record.stepsTotal = outcome.totalSteps;
    record.unschedules = outcome.totalUnschedules;

    const auto violations =
        sched::verifySchedule(loop, machine, graph, outcome.schedule);
    support::check(violations.empty(),
                   "illegal schedule for '" + loop.name() +
                       "': " + (violations.empty() ? "" : violations[0].toString()));

    record.listScheduleLength =
        sched::listSchedule(loop, machine, graph).scheduleLength;
    const mii::MinDistMatrix dist(graph, record.mii);
    record.minScheduleLength = std::max<int>(
        static_cast<int>(dist.atVertex(graph.start(), graph.stop())),
        record.listScheduleLength);

    return record;
}

/** Measure the whole corpus (progress dots to stderr). */
inline std::vector<LoopRecord>
measureCorpus(const std::vector<workloads::Workload>& corpus,
              const machine::MachineModel& machine,
              const sched::ScheduleOptions& options)
{
    std::vector<LoopRecord> records;
    records.reserve(corpus.size());
    for (const auto& workload : corpus)
        records.push_back(measureLoop(workload, machine, options));
    return records;
}

/** Format a Table 3-style row from samples. */
inline std::vector<std::string>
distributionRow(const std::string& label, const std::vector<double>& samples,
                double min_possible, int precision = 2)
{
    const auto stats = support::summarize(samples, min_possible);
    return {label,
            support::formatDouble(stats.minPossible, 0),
            support::formatDouble(stats.freqOfMinPossible, 3),
            support::formatDouble(stats.median, 2),
            support::formatDouble(stats.mean, precision),
            support::formatDouble(stats.maximum, 2)};
}

/** The paper's execution-time pair for one record under a profile. */
struct ExecTime
{
    double actual = 0.0;
    double bound = 0.0;
};

inline ExecTime
executionTimes(const LoopRecord& record, const workloads::LoopProfile& p)
{
    ExecTime t;
    t.actual = workloads::executionTime(p, record.scheduleLength, record.ii);
    t.bound =
        workloads::executionTime(p, record.minScheduleLength, record.mii);
    return t;
}

} // namespace ims::bench

#endif // IMS_BENCH_COMMON_HPP
