/**
 * @file
 * Ablation: the load-store elimination preprocessing step of §1
 * ("memory reference data flow analysis ... can improve the schedule if
 * either a load is on a critical path or if the memory ports are the
 * critical resources"). Memory-carried recurrences from the kernel
 * library and the corpus are scheduled before and after forwarding.
 */
#include <iostream>

#include "common.hpp"
#include "transform/load_store_elim.hpp"

int
main()
{
    using namespace ims;
    using namespace ims::bench;

    const auto machine = machine::cydra5();
    sched::ScheduleOptions options;
    options.search.budgetRatio = 6.0;

    support::TextTable table(
        "load-store elimination: critical-path loads removed");
    table.addHeader({"Loop", "Loads removed", "MII before", "MII after",
                     "II before", "II after", "Speedup gain"});

    auto run = [&](const ir::Loop& loop) {
        const auto g = graph::buildDepGraph(loop, machine);
        const auto sccs = graph::findSccs(g);
        return sched::schedule(loop, machine, g, sccs, options);
    };

    for (const char* name : {"mem_recurrence", "daxpy", "vec_copy"}) {
        const auto w = workloads::kernelByName(name);
        const auto forwarded =
            transform::eliminateRedundantLoads(w.loop);
        const auto before = run(w.loop);
        const auto after = run(forwarded.loop);
        table.addRow(
            {name, std::to_string(forwarded.eliminatedLoads),
             std::to_string(before.mii), std::to_string(after.mii),
             std::to_string(before.schedule.ii),
             std::to_string(after.schedule.ii),
             support::formatDouble(
                 static_cast<double>(before.schedule.ii) /
                     after.schedule.ii,
                 2) +
                 "x"});
    }
    table.print(std::cout);

    // Corpus-wide effect: how many generated loops contain forwardable
    // memory recurrences, and what it does to the mean II.
    workloads::CorpusSpec spec;
    spec.perfectLoops = 400;
    spec.specLoops = 120;
    spec.lfkLoops = 27;
    const auto corpus = workloads::buildCorpus(spec);
    int touched = 0;
    long long removed = 0;
    double ii_before = 0.0, ii_after = 0.0;
    for (const auto& w : corpus) {
        const auto forwarded =
            transform::eliminateRedundantLoads(w.loop);
        if (forwarded.eliminatedLoads == 0)
            continue;
        ++touched;
        removed += forwarded.eliminatedLoads;
        ii_before += run(w.loop).schedule.ii;
        ii_after += run(forwarded.loop).schedule.ii;
    }
    std::cout << "\nCorpus (" << corpus.size() << " loops): " << touched
              << " loops had forwardable loads (" << removed
              << " loads removed); mean II on those loops "
              << support::formatDouble(ii_before / std::max(1, touched),
                                       2)
              << " -> "
              << support::formatDouble(ii_after / std::max(1, touched), 2)
              << "\n";
    std::cout << "\nExpected shape: memory-carried recurrences lose the "
                 "20-cycle load from their critical\ncircuit (RecMII "
                 "collapses); pure streaming loops are untouched (their "
                 "loads read arrays no\nstore writes, or cells no store "
                 "reaches).\n";
    return 0;
}
