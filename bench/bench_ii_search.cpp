/**
 * @file
 * Linear vs racing vs feedback II search on hard-II workloads.
 *
 * "Hard II" means the lowest feasible II sits well above the MII, so the
 * linear search burns a full budget per failed candidate before reaching
 * the winner — exactly the sequential tail the racing strategy overlaps.
 * The workloads are self-calibrated: a fixed-seed stream of fuzz-profile
 * loops is scheduled on the scalar-toy machine (its contention pushes
 * feasible IIs above the MII) and the first loops needing >= 5 linear
 * attempts are kept and unrolled into multi-hundred-op bodies.
 *
 * The feedback strategy is measured on a second, *provable-gap* family:
 * a crafted machine whose kMul reservation table uses the `sparse`
 * resource at times 0 and C, so the operation modulo-self-collides — and
 * the loop is provably infeasible — at every candidate II dividing C. A
 * 4-add recurrence pins the MII below those gaps, forcing the linear
 * walk to attempt (and fail) each divisor candidate the feedback probe
 * can skip with an exact infeasibility proof.
 *
 * Three gates:
 *
 *  1. **Identity** (always enforced): every racing run, at every thread
 *     count, must produce the same (II, schedule hash, attempts,
 *     totalSteps) as the linear search. A violation is a determinism bug
 *     and fails the bench regardless of timing. Feedback runs must match
 *     linear's (II, schedule hash, attempts) on every workload of both
 *     families — a skip is only sound on a candidate linear also failed.
 *  2. **Speedup** (hardware-gated): the geometric-mean racing speedup at
 *     the gated thread count must reach --min-speedup (default 1.5).
 *     Enforced only when std::thread::hardware_concurrency() covers the
 *     gated thread count — on smaller hosts the gate is reported as
 *     skipped (the JSON records the core count so readers can tell).
 *  3. **Feedback savings** (always enforced; deterministic): on every
 *     provable-gap workload the feedback search must skip at least one
 *     candidate and start strictly fewer attempts (started + wasted)
 *     than linear at the equal final II; billed scheduling steps must
 *     drop accordingly.
 *
 * Usage:
 *   bench_ii_search [--out PATH] [--threads a,b,c] [--gate-threads N]
 *                   [--min-speedup X] [--repeats N] [--quick]
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "ir/loop_builder.hpp"
#include "machine/machine_builder.hpp"
#include "machine/machines.hpp"
#include "support/error.hpp"
#include "sched/schedule.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "transform/unroll.hpp"
#include "workloads/random_loops.hpp"

namespace {

using namespace ims;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** FNV-1a over the schedule's (II, times, alternatives). */
std::uint64_t
scheduleHash(const sched::ScheduleResult& schedule)
{
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t value) {
        h ^= value;
        h *= 1099511628211ULL;
    };
    mix(static_cast<std::uint64_t>(schedule.ii));
    for (std::size_t v = 0; v < schedule.times.size(); ++v) {
        mix(static_cast<std::uint64_t>(schedule.times[v]));
        mix(static_cast<std::uint64_t>(schedule.alternatives[v]));
    }
    return h;
}

std::vector<int>
parseThreadList(const std::string& text)
{
    std::vector<int> threads;
    std::string item;
    for (const char c : text + ",") {
        if (c == ',') {
            if (!item.empty()) {
                threads.push_back(std::atoi(item.c_str()));
                item.clear();
            }
        } else {
            item += c;
        }
    }
    return threads;
}

/**
 * Fixed-seed calibration: walk the fuzz-profile loop stream on the
 * scalar-toy machine and keep the first `want` loops whose linear search
 * needs at least `min_attempts` candidate IIs, then unroll them so every
 * failed attempt is worth overlapping.
 */
std::vector<ir::Loop>
calibrateWorkloads(const machine::MachineModel& machine, int want,
                   int min_attempts, int unroll)
{
    support::Rng rng(1);
    const auto profile = workloads::fuzzProfile();
    std::vector<ir::Loop> hard;
    constexpr int kMaxCandidates = 600;
    for (int i = 0;
         i < kMaxCandidates && static_cast<int>(hard.size()) < want; ++i) {
        auto loop = workloads::generateLoop(
            rng, "hard_" + std::to_string(i), profile);
        try {
            const auto outcome = sched::schedule(loop, machine);
            if (outcome.attempts < min_attempts)
                continue;
        } catch (const support::Error&) {
            continue;
        }
        hard.push_back(transform::unrollLoop(loop, unroll));
    }
    return hard;
}

// ---------------------------------------------------------------------------
// Provable-gap family for the feedback strategy.

/**
 * The gap machine: kAdd has two (src_bus, alu) alternatives; kMul has a
 * single alternative using `sparse` at times 0 and C, which self-collides
 * at every II dividing C (the provable gaps). Everything else is a plain
 * single-cycle `mem` table so the rest of the loop never interferes.
 */
machine::MachineModel
gapMachine(int c)
{
    machine::MachineBuilder b("gapster_c" + std::to_string(c));
    b.addResource("src_bus");
    b.addResource("alu0");
    b.addResource("alu1");
    b.addResource("sparse");
    b.addResource("mem");
    {
        machine::ReservationTable t0, t1;
        t0.addUse(0, 0);
        t0.addUse(1, 1);
        t1.addUse(0, 0);
        t1.addUse(1, 2);
        auto cfg = b.opcode(ir::Opcode::kAdd, 4);
        cfg.alternative("a0", t0);
        cfg.alternative("a1", t1);
    }
    {
        machine::ReservationTable t;
        t.addUse(0, 3);
        t.addUse(c, 3);
        auto cfg = b.opcode(ir::Opcode::kMul, 3);
        cfg.alternative("m", t);
    }
    for (int i = 0; i < ir::kNumRealOpcodes; ++i) {
        const auto op = static_cast<ir::Opcode>(i);
        if (op == ir::Opcode::kAdd || op == ir::Opcode::kMul)
            continue;
        machine::ReservationTable t;
        t.addUse(0, 4);
        auto cfg = b.opcode(op, op == ir::Opcode::kLoad ? 2 : 1);
        cfg.alternative("s", t);
    }
    return b.build();
}

/** 4-add recurrence of distance 2 (RecMII 8), the gap kMul, two loads. */
ir::Loop
gapLoop(int c)
{
    ir::LoopBuilder b("gap_c" + std::to_string(c));
    b.recurrence("r");
    b.op(ir::Opcode::kAdd, "t0", {b.reg("r", 2), b.imm(1)});
    b.op(ir::Opcode::kAdd, "t1", {b.reg("t0"), b.imm(1)});
    b.op(ir::Opcode::kAdd, "t2", {b.reg("t1"), b.imm(1)});
    b.op(ir::Opcode::kAdd, "r", {b.reg("t2"), b.imm(1)});
    b.liveIn("x");
    b.op(ir::Opcode::kMul, "p", {b.reg("x"), b.imm(3)});
    b.load("f0", "A", 0, b.reg("x"));
    b.load("f1", "A", 1, b.reg("x"));
    b.closeLoop();
    return b.build();
}

struct GapResult
{
    std::string name;
    std::string backend; // "iterative" or "slack"
    int mii = 0;
    int ii = 0;
    int attempts = 0;
    int linearAttemptsStarted = 0;
    int feedbackAttemptsStarted = 0;
    int skippedIis = 0;
    long long linearSteps = 0;
    long long feedbackSteps = 0;
    bool identical = false;
};

struct Measurement
{
    std::string strategy; // "linear" or "racing_tN"
    int threads = 1;
    double wallSeconds = 0.0;    // summed over repeats
    double searchSeconds = 0.0;  // strategy-reported, summed
    double speedup = 1.0;        // linear wall / this wall
};

struct WorkloadResult
{
    std::string name;
    int ops = 0;
    int mii = 0;
    int ii = 0;
    int attempts = 0;
    long long totalSteps = 0;
    std::uint64_t hash = 0;
    std::vector<Measurement> measurements;
};

} // namespace

int
main(int argc, char** argv)
{
    std::string out_path = "BENCH_ii_search.json";
    std::vector<int> thread_counts = {2, 4, 8};
    int gate_threads = 8;
    double min_speedup = 1.5;
    int repeats = 30;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            thread_counts = parseThreadList(argv[++i]);
        else if (std::strcmp(argv[i], "--gate-threads") == 0 && i + 1 < argc)
            gate_threads = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc)
            min_speedup = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc)
            repeats = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else {
            std::cerr << "usage: bench_ii_search [--out PATH] "
                         "[--threads a,b,c] [--gate-threads N] "
                         "[--min-speedup X] [--repeats N] [--quick]\n";
            return 2;
        }
    }
    if (quick)
        repeats = std::max(1, repeats / 10);

    const unsigned cores = std::thread::hardware_concurrency();
    const auto machine = machine::scalarToy();

    std::cout << "calibrating hard-II workloads (feasible II >= MII+4) "
                 "...\n";
    const auto workloads = calibrateWorkloads(
        machine, /*want=*/quick ? 3 : 5, /*min_attempts=*/5,
        /*unroll=*/quick ? 4 : 8);
    if (workloads.empty()) {
        std::cerr << "bench_ii_search: calibration found no hard-II "
                     "workloads\n";
        return 1;
    }

    int identity_violations = 0;
    std::vector<WorkloadResult> results;
    for (const auto& loop : workloads) {
        WorkloadResult result;
        result.name = loop.name();
        result.ops = loop.size();

        // Linear reference (also warms the allocator caches).
        {
            sched::ScheduleOptions options;
            Measurement m;
            m.strategy = "linear";
            const auto start = Clock::now();
            for (int r = 0; r < repeats; ++r) {
                const auto outcome =
                    sched::schedule(loop, machine, options);
                m.searchSeconds += outcome.search.wallSeconds;
                result.mii = outcome.mii;
                result.ii = outcome.schedule.ii;
                result.attempts = outcome.attempts;
                result.totalSteps = outcome.totalSteps;
                result.hash = scheduleHash(outcome.schedule);
            }
            m.wallSeconds = secondsSince(start);
            result.measurements.push_back(std::move(m));
        }
        const double linear_wall = result.measurements[0].wallSeconds;

        for (const int threads : thread_counts) {
            sched::ScheduleOptions options;
            options.search.withKind(sched::IiSearchKind::kRacing)
                .withThreads(threads);
            Measurement m;
            m.strategy = "racing_t" + std::to_string(threads);
            m.threads = threads;
            const auto start = Clock::now();
            for (int r = 0; r < repeats; ++r) {
                const auto outcome =
                    sched::schedule(loop, machine, options);
                m.searchSeconds += outcome.search.wallSeconds;
                // Identity gate: bit-identical to the linear search, on
                // every run, at every thread count.
                if (outcome.schedule.ii != result.ii ||
                    scheduleHash(outcome.schedule) != result.hash ||
                    outcome.attempts != result.attempts ||
                    outcome.totalSteps != result.totalSteps) {
                    std::cerr << "identity violation: " << result.name
                              << " with " << m.strategy << " run " << r
                              << ": II " << outcome.schedule.ii << " vs "
                              << result.ii << ", attempts "
                              << outcome.attempts << " vs "
                              << result.attempts << "\n";
                    ++identity_violations;
                }
            }
            m.wallSeconds = secondsSince(start);
            m.speedup = linear_wall / std::max(m.wallSeconds, 1e-12);
            result.measurements.push_back(std::move(m));
        }

        // Feedback identity on the hard-II family: the winner and the
        // winning schedule must equal linear's (skips, when the probe
        // proves any, only remove failed attempts from the bill).
        {
            sched::ScheduleOptions options;
            options.search.withKind(sched::IiSearchKind::kFeedback);
            const auto outcome = sched::schedule(loop, machine, options);
            if (outcome.schedule.ii != result.ii ||
                scheduleHash(outcome.schedule) != result.hash ||
                outcome.attempts != result.attempts ||
                outcome.totalSteps > result.totalSteps) {
                std::cerr << "identity violation: " << result.name
                          << " with feedback: II " << outcome.schedule.ii
                          << " vs " << result.ii << ", attempts "
                          << outcome.attempts << " vs " << result.attempts
                          << "\n";
                ++identity_violations;
            }
        }
        results.push_back(std::move(result));
    }

    support::TextTable table(
        "II search: linear vs racing on hard-II workloads (" +
        machine.name() + ", " + std::to_string(repeats) + " repeats, " +
        std::to_string(cores) + " cores)");
    std::vector<std::string> header = {"workload", "ops", "MII", "II",
                                       "attempts", "linear ms"};
    for (const int threads : thread_counts)
        header.push_back("racing t" + std::to_string(threads));
    table.addHeader(header);
    for (const auto& r : results) {
        std::vector<std::string> row = {
            r.name,
            std::to_string(r.ops),
            std::to_string(r.mii),
            std::to_string(r.ii),
            std::to_string(r.attempts),
            support::formatDouble(1e3 * r.measurements[0].wallSeconds, 2)};
        for (std::size_t i = 1; i < r.measurements.size(); ++i)
            row.push_back(
                support::formatDouble(r.measurements[i].speedup, 2) + "x");
        table.addRow(row);
    }
    table.print(std::cout);

    // Geometric-mean speedup per thread count.
    std::vector<double> geomean(thread_counts.size(), 1.0);
    for (std::size_t t = 0; t < thread_counts.size(); ++t) {
        double log_sum = 0.0;
        for (const auto& r : results)
            log_sum += std::log(r.measurements[t + 1].speedup);
        geomean[t] = std::exp(log_sum / results.size());
        std::cout << "geomean speedup at " << thread_counts[t]
                  << " threads: "
                  << support::formatDouble(geomean[t], 2) << "x\n";
    }

    // Speedup gate, hardware-permitting.
    bool gate_enforced = false;
    bool gate_passed = true;
    for (std::size_t t = 0; t < thread_counts.size(); ++t) {
        if (thread_counts[t] != gate_threads)
            continue;
        if (cores >= static_cast<unsigned>(gate_threads)) {
            gate_enforced = true;
            gate_passed = geomean[t] >= min_speedup;
            std::cout << "speedup gate at " << gate_threads << " threads: "
                      << support::formatDouble(geomean[t], 2) << "x vs "
                      << support::formatDouble(min_speedup, 2)
                      << "x floor: "
                      << (gate_passed ? "passed" : "FAILED") << "\n";
        } else {
            std::cout << "speedup gate skipped (" << cores
                      << " cores < " << gate_threads
                      << " gated threads; identity still enforced)\n";
        }
    }

    // ----------------------------------------------------------------
    // Provable-gap family: linear vs feedback, both heuristic backends.
    // Everything here is deterministic (single-worker strategies, no
    // timing dependence), so the gate always enforces.
    const std::vector<int> gap_cs = {90, 360, 1980, 2520};
    std::vector<GapResult> gaps;
    bool feedback_gate_passed = true;
    for (const int c : gap_cs) {
        const auto machine_c = gapMachine(c);
        const auto loop = gapLoop(c);
        for (const auto backend : {sched::SchedulerStrategy::kIterative,
                                   sched::SchedulerStrategy::kSlack}) {
            sched::ScheduleOptions linear;
            linear.strategy = backend;
            const auto base = sched::schedule(loop, machine_c, linear);

            sched::ScheduleOptions fb = linear;
            fb.search.withKind(sched::IiSearchKind::kFeedback);
            const auto got = sched::schedule(loop, machine_c, fb);

            GapResult g;
            g.name = loop.name();
            g.backend = base.scheduler;
            g.mii = base.mii;
            g.ii = base.schedule.ii;
            g.attempts = base.attempts;
            g.linearAttemptsStarted = base.search.attemptsStarted +
                                      base.search.attemptsWasted;
            g.feedbackAttemptsStarted = got.search.attemptsStarted +
                                        got.search.attemptsWasted;
            g.skippedIis = got.search.skippedIis;
            g.linearSteps = base.totalSteps;
            g.feedbackSteps = got.totalSteps;
            g.identical =
                got.schedule.ii == base.schedule.ii &&
                scheduleHash(got.schedule) == scheduleHash(base.schedule) &&
                got.attempts == base.attempts;

            // The tentpole gate: equal final II and schedule, at least
            // one proven skip, strictly fewer started+wasted attempts,
            // and a strictly smaller step bill.
            if (!g.identical || g.skippedIis < 1 ||
                g.feedbackAttemptsStarted >= g.linearAttemptsStarted ||
                g.feedbackSteps >= g.linearSteps) {
                std::cerr << "feedback gate violation: " << g.name << "/"
                          << g.backend << ": identical="
                          << (g.identical ? "yes" : "NO")
                          << " skipped=" << g.skippedIis << " attempts "
                          << g.feedbackAttemptsStarted << " vs "
                          << g.linearAttemptsStarted << ", steps "
                          << g.feedbackSteps << " vs " << g.linearSteps
                          << "\n";
                feedback_gate_passed = false;
            }
            gaps.push_back(std::move(g));
        }
    }

    support::TextTable gap_table(
        "feedback search: provable-gap family (linear vs feedback, "
        "started+wasted attempts and billed steps)");
    gap_table.addHeader({"workload", "backend", "MII", "II", "skipped",
                         "attempts lin", "attempts fb", "steps lin",
                         "steps fb"});
    double attempt_log_sum = 0.0;
    double step_log_sum = 0.0;
    for (const auto& g : gaps) {
        gap_table.addRow({g.name, g.backend, std::to_string(g.mii),
                          std::to_string(g.ii),
                          std::to_string(g.skippedIis),
                          std::to_string(g.linearAttemptsStarted),
                          std::to_string(g.feedbackAttemptsStarted),
                          std::to_string(g.linearSteps),
                          std::to_string(g.feedbackSteps)});
        attempt_log_sum += std::log(
            static_cast<double>(g.linearAttemptsStarted) /
            std::max(1, g.feedbackAttemptsStarted));
        step_log_sum +=
            std::log(static_cast<double>(g.linearSteps) /
                     std::max(1LL, g.feedbackSteps));
    }
    gap_table.print(std::cout);
    const double attempt_savings =
        gaps.empty() ? 1.0 : std::exp(attempt_log_sum / gaps.size());
    const double step_savings =
        gaps.empty() ? 1.0 : std::exp(step_log_sum / gaps.size());
    std::cout << "feedback geomean savings: "
              << support::formatDouble(attempt_savings, 2)
              << "x fewer started attempts, "
              << support::formatDouble(step_savings, 2)
              << "x fewer billed steps\n"
              << "feedback gate (>=1 skip, strictly fewer attempts and "
                 "steps, identical schedule): "
              << (feedback_gate_passed ? "passed" : "FAILED") << "\n";

    {
        std::ofstream out(out_path);
        out << "{\n  \"schema\": \"ims.bench_ii_search.v2\",\n"
            << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
            << "  \"cores\": " << cores << ",\n"
            << "  \"repeats\": " << repeats << ",\n"
            << "  \"min_speedup\": " << min_speedup << ",\n"
            << "  \"gate_threads\": " << gate_threads << ",\n"
            << "  \"gate_enforced\": " << (gate_enforced ? "true" : "false")
            << ",\n"
            << "  \"identity_violations\": " << identity_violations
            << ",\n  \"workloads\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto& r = results[i];
            out << "    {\"name\": \"" << r.name << "\", \"ops\": "
                << r.ops << ", \"mii\": " << r.mii << ", \"ii\": " << r.ii
                << ", \"attempts\": " << r.attempts << ", \"hash\": \""
                << r.hash << "\", \"measurements\": [";
            for (std::size_t m = 0; m < r.measurements.size(); ++m) {
                const auto& s = r.measurements[m];
                out << (m == 0 ? "" : ", ") << "{\"strategy\": \""
                    << s.strategy << "\", \"threads\": " << s.threads
                    << ", \"wall_seconds\": " << s.wallSeconds
                    << ", \"speedup\": " << s.speedup << "}";
            }
            out << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
        }
        out << "  ],\n";
        out << "  \"feedback_gate_passed\": "
            << (feedback_gate_passed ? "true" : "false") << ",\n"
            << "  \"feedback_attempt_savings\": " << attempt_savings
            << ",\n"
            << "  \"feedback_step_savings\": " << step_savings << ",\n"
            << "  \"gap_family\": [\n";
        for (std::size_t i = 0; i < gaps.size(); ++i) {
            const auto& g = gaps[i];
            out << "    {\"name\": \"" << g.name << "\", \"backend\": \""
                << g.backend << "\", \"mii\": " << g.mii << ", \"ii\": "
                << g.ii << ", \"attempts\": " << g.attempts
                << ", \"skipped\": " << g.skippedIis
                << ", \"linear_started\": " << g.linearAttemptsStarted
                << ", \"feedback_started\": " << g.feedbackAttemptsStarted
                << ", \"linear_steps\": " << g.linearSteps
                << ", \"feedback_steps\": " << g.feedbackSteps
                << ", \"identical\": " << (g.identical ? "true" : "false")
                << "}" << (i + 1 < gaps.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
    }
    std::cout << "wrote " << out_path << "\n";

    if (identity_violations != 0) {
        std::cerr << "bench_ii_search: " << identity_violations
                  << " identity violations (racing/feedback != linear)\n";
        return 1;
    }
    if (!feedback_gate_passed) {
        std::cerr << "bench_ii_search: feedback gate failed on the "
                     "provable-gap family\n";
        return 1;
    }
    if (gate_enforced && !gate_passed)
        return 1;
    return 0;
}
