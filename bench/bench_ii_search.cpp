/**
 * @file
 * Linear vs racing II search on hard-II workloads.
 *
 * "Hard II" means the lowest feasible II sits well above the MII, so the
 * linear search burns a full budget per failed candidate before reaching
 * the winner — exactly the sequential tail the racing strategy overlaps.
 * The workloads are self-calibrated: a fixed-seed stream of fuzz-profile
 * loops is scheduled on the scalar-toy machine (its contention pushes
 * feasible IIs above the MII) and the first loops needing >= 5 linear
 * attempts are kept and unrolled into multi-hundred-op bodies.
 *
 * Two gates:
 *
 *  1. **Identity** (always enforced): every racing run, at every thread
 *     count, must produce the same (II, schedule hash, attempts,
 *     totalSteps) as the linear search. A violation is a determinism bug
 *     and fails the bench regardless of timing.
 *  2. **Speedup** (hardware-gated): the geometric-mean racing speedup at
 *     the gated thread count must reach --min-speedup (default 1.5).
 *     Enforced only when std::thread::hardware_concurrency() covers the
 *     gated thread count — on smaller hosts the gate is reported as
 *     skipped (the JSON records the core count so readers can tell).
 *
 * Usage:
 *   bench_ii_search [--out PATH] [--threads a,b,c] [--gate-threads N]
 *                   [--min-speedup X] [--repeats N] [--quick]
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "machine/machines.hpp"
#include "support/error.hpp"
#include "sched/schedule.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "transform/unroll.hpp"
#include "workloads/random_loops.hpp"

namespace {

using namespace ims;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** FNV-1a over the schedule's (II, times, alternatives). */
std::uint64_t
scheduleHash(const sched::ScheduleResult& schedule)
{
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t value) {
        h ^= value;
        h *= 1099511628211ULL;
    };
    mix(static_cast<std::uint64_t>(schedule.ii));
    for (std::size_t v = 0; v < schedule.times.size(); ++v) {
        mix(static_cast<std::uint64_t>(schedule.times[v]));
        mix(static_cast<std::uint64_t>(schedule.alternatives[v]));
    }
    return h;
}

std::vector<int>
parseThreadList(const std::string& text)
{
    std::vector<int> threads;
    std::string item;
    for (const char c : text + ",") {
        if (c == ',') {
            if (!item.empty()) {
                threads.push_back(std::atoi(item.c_str()));
                item.clear();
            }
        } else {
            item += c;
        }
    }
    return threads;
}

/**
 * Fixed-seed calibration: walk the fuzz-profile loop stream on the
 * scalar-toy machine and keep the first `want` loops whose linear search
 * needs at least `min_attempts` candidate IIs, then unroll them so every
 * failed attempt is worth overlapping.
 */
std::vector<ir::Loop>
calibrateWorkloads(const machine::MachineModel& machine, int want,
                   int min_attempts, int unroll)
{
    support::Rng rng(1);
    const auto profile = workloads::fuzzProfile();
    std::vector<ir::Loop> hard;
    constexpr int kMaxCandidates = 600;
    for (int i = 0;
         i < kMaxCandidates && static_cast<int>(hard.size()) < want; ++i) {
        auto loop = workloads::generateLoop(
            rng, "hard_" + std::to_string(i), profile);
        try {
            const auto outcome = sched::schedule(loop, machine);
            if (outcome.attempts < min_attempts)
                continue;
        } catch (const support::Error&) {
            continue;
        }
        hard.push_back(transform::unrollLoop(loop, unroll));
    }
    return hard;
}

struct Measurement
{
    std::string strategy; // "linear" or "racing_tN"
    int threads = 1;
    double wallSeconds = 0.0;    // summed over repeats
    double searchSeconds = 0.0;  // strategy-reported, summed
    double speedup = 1.0;        // linear wall / this wall
};

struct WorkloadResult
{
    std::string name;
    int ops = 0;
    int mii = 0;
    int ii = 0;
    int attempts = 0;
    long long totalSteps = 0;
    std::uint64_t hash = 0;
    std::vector<Measurement> measurements;
};

} // namespace

int
main(int argc, char** argv)
{
    std::string out_path = "BENCH_ii_search.json";
    std::vector<int> thread_counts = {2, 4, 8};
    int gate_threads = 8;
    double min_speedup = 1.5;
    int repeats = 30;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            thread_counts = parseThreadList(argv[++i]);
        else if (std::strcmp(argv[i], "--gate-threads") == 0 && i + 1 < argc)
            gate_threads = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc)
            min_speedup = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc)
            repeats = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else {
            std::cerr << "usage: bench_ii_search [--out PATH] "
                         "[--threads a,b,c] [--gate-threads N] "
                         "[--min-speedup X] [--repeats N] [--quick]\n";
            return 2;
        }
    }
    if (quick)
        repeats = std::max(1, repeats / 10);

    const unsigned cores = std::thread::hardware_concurrency();
    const auto machine = machine::scalarToy();

    std::cout << "calibrating hard-II workloads (feasible II >= MII+4) "
                 "...\n";
    const auto workloads = calibrateWorkloads(
        machine, /*want=*/quick ? 3 : 5, /*min_attempts=*/5,
        /*unroll=*/quick ? 4 : 8);
    if (workloads.empty()) {
        std::cerr << "bench_ii_search: calibration found no hard-II "
                     "workloads\n";
        return 1;
    }

    int identity_violations = 0;
    std::vector<WorkloadResult> results;
    for (const auto& loop : workloads) {
        WorkloadResult result;
        result.name = loop.name();
        result.ops = loop.size();

        // Linear reference (also warms the allocator caches).
        {
            sched::ScheduleOptions options;
            Measurement m;
            m.strategy = "linear";
            const auto start = Clock::now();
            for (int r = 0; r < repeats; ++r) {
                const auto outcome =
                    sched::schedule(loop, machine, options);
                m.searchSeconds += outcome.search.wallSeconds;
                result.mii = outcome.mii;
                result.ii = outcome.schedule.ii;
                result.attempts = outcome.attempts;
                result.totalSteps = outcome.totalSteps;
                result.hash = scheduleHash(outcome.schedule);
            }
            m.wallSeconds = secondsSince(start);
            result.measurements.push_back(std::move(m));
        }
        const double linear_wall = result.measurements[0].wallSeconds;

        for (const int threads : thread_counts) {
            sched::ScheduleOptions options;
            options.search.withKind(sched::IiSearchKind::kRacing)
                .withThreads(threads);
            Measurement m;
            m.strategy = "racing_t" + std::to_string(threads);
            m.threads = threads;
            const auto start = Clock::now();
            for (int r = 0; r < repeats; ++r) {
                const auto outcome =
                    sched::schedule(loop, machine, options);
                m.searchSeconds += outcome.search.wallSeconds;
                // Identity gate: bit-identical to the linear search, on
                // every run, at every thread count.
                if (outcome.schedule.ii != result.ii ||
                    scheduleHash(outcome.schedule) != result.hash ||
                    outcome.attempts != result.attempts ||
                    outcome.totalSteps != result.totalSteps) {
                    std::cerr << "identity violation: " << result.name
                              << " with " << m.strategy << " run " << r
                              << ": II " << outcome.schedule.ii << " vs "
                              << result.ii << ", attempts "
                              << outcome.attempts << " vs "
                              << result.attempts << "\n";
                    ++identity_violations;
                }
            }
            m.wallSeconds = secondsSince(start);
            m.speedup = linear_wall / std::max(m.wallSeconds, 1e-12);
            result.measurements.push_back(std::move(m));
        }
        results.push_back(std::move(result));
    }

    support::TextTable table(
        "II search: linear vs racing on hard-II workloads (" +
        machine.name() + ", " + std::to_string(repeats) + " repeats, " +
        std::to_string(cores) + " cores)");
    std::vector<std::string> header = {"workload", "ops", "MII", "II",
                                       "attempts", "linear ms"};
    for (const int threads : thread_counts)
        header.push_back("racing t" + std::to_string(threads));
    table.addHeader(header);
    for (const auto& r : results) {
        std::vector<std::string> row = {
            r.name,
            std::to_string(r.ops),
            std::to_string(r.mii),
            std::to_string(r.ii),
            std::to_string(r.attempts),
            support::formatDouble(1e3 * r.measurements[0].wallSeconds, 2)};
        for (std::size_t i = 1; i < r.measurements.size(); ++i)
            row.push_back(
                support::formatDouble(r.measurements[i].speedup, 2) + "x");
        table.addRow(row);
    }
    table.print(std::cout);

    // Geometric-mean speedup per thread count.
    std::vector<double> geomean(thread_counts.size(), 1.0);
    for (std::size_t t = 0; t < thread_counts.size(); ++t) {
        double log_sum = 0.0;
        for (const auto& r : results)
            log_sum += std::log(r.measurements[t + 1].speedup);
        geomean[t] = std::exp(log_sum / results.size());
        std::cout << "geomean speedup at " << thread_counts[t]
                  << " threads: "
                  << support::formatDouble(geomean[t], 2) << "x\n";
    }

    // Speedup gate, hardware-permitting.
    bool gate_enforced = false;
    bool gate_passed = true;
    for (std::size_t t = 0; t < thread_counts.size(); ++t) {
        if (thread_counts[t] != gate_threads)
            continue;
        if (cores >= static_cast<unsigned>(gate_threads)) {
            gate_enforced = true;
            gate_passed = geomean[t] >= min_speedup;
            std::cout << "speedup gate at " << gate_threads << " threads: "
                      << support::formatDouble(geomean[t], 2) << "x vs "
                      << support::formatDouble(min_speedup, 2)
                      << "x floor: "
                      << (gate_passed ? "passed" : "FAILED") << "\n";
        } else {
            std::cout << "speedup gate skipped (" << cores
                      << " cores < " << gate_threads
                      << " gated threads; identity still enforced)\n";
        }
    }

    {
        std::ofstream out(out_path);
        out << "{\n  \"schema\": \"ims.bench_ii_search.v1\",\n"
            << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
            << "  \"cores\": " << cores << ",\n"
            << "  \"repeats\": " << repeats << ",\n"
            << "  \"min_speedup\": " << min_speedup << ",\n"
            << "  \"gate_threads\": " << gate_threads << ",\n"
            << "  \"gate_enforced\": " << (gate_enforced ? "true" : "false")
            << ",\n"
            << "  \"identity_violations\": " << identity_violations
            << ",\n  \"workloads\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto& r = results[i];
            out << "    {\"name\": \"" << r.name << "\", \"ops\": "
                << r.ops << ", \"mii\": " << r.mii << ", \"ii\": " << r.ii
                << ", \"attempts\": " << r.attempts << ", \"hash\": \""
                << r.hash << "\", \"measurements\": [";
            for (std::size_t m = 0; m < r.measurements.size(); ++m) {
                const auto& s = r.measurements[m];
                out << (m == 0 ? "" : ", ") << "{\"strategy\": \""
                    << s.strategy << "\", \"threads\": " << s.threads
                    << ", \"wall_seconds\": " << s.wallSeconds
                    << ", \"speedup\": " << s.speedup << "}";
            }
            out << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
    }
    std::cout << "wrote " << out_path << "\n";

    if (identity_violations != 0) {
        std::cerr << "bench_ii_search: " << identity_violations
                  << " identity violations (racing != linear)\n";
        return 1;
    }
    if (gate_enforced && !gate_passed)
        return 1;
    return 0;
}
